"""EXP-CHURN — healers under mixed insert/delete streams (the churn game).

Two experiments:

* **EXP-CHURN-SCALE** — the Forgiving Tree under a random churn stream at
  n0 up to 10k: per-event wall time, peak degree increase, and peak
  synthesized messages per node stay flat as the network scales.
* **EXP-CHURN-DUEL** — head-to-head healers under growth-then-massacre:
  the join wave grows the network, then the hub attack tears it down;
  the Forgiving Tree keeps both guarantees while the baselines reproduce
  their signature failures.

Quick mode (for CI smoke runs): set ``CHURN_BENCH_QUICK=1`` to shrink the
sizes to seconds of runtime.
"""

import os
import time

from repro.adversaries import GrowthThenMassacreAdversary, RandomChurnAdversary
from repro.baselines import (
    BinaryTreeHealer,
    ForgivingTreeHealer,
    LineHealer,
    SurrogateHealer,
)
from repro.graphs import generators
from repro.harness import churn_duel, report, run_churn_campaign

from benchmarks.conftest import emit

QUICK = os.environ.get("CHURN_BENCH_QUICK", "").strip().lower() not in (
    "", "0", "false", "no",
)

SCALE_SIZES = (100, 1000) if QUICK else (100, 1000, 10_000)
SCALE_EVENTS = (lambda n: max(40, n // 10)) if QUICK else (lambda n: n // 2)
DUEL_N = 60 if QUICK else 300
DUEL_GROWTH = 30 if QUICK else 150


def run_scale_sweep():
    rows = []
    for n0 in SCALE_SIZES:
        tree = generators.random_tree(n0, seed=1)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        adversary = RandomChurnAdversary(p_insert=0.5, seed=1)
        events = SCALE_EVENTS(n0)
        t0 = time.perf_counter()
        result = run_churn_campaign(
            healer, adversary, events=events, measure_diameter=False
        )
        elapsed = time.perf_counter() - t0
        rows.append(
            [
                n0,
                events,
                result.final_alive,
                result.peak_degree_increase,
                result.peak_messages_per_node,
                result.stayed_connected,
                f"{1e6 * elapsed / max(1, len(result.rounds)):.0f}",
            ]
        )
    return rows


def run_churn_duel():
    tree = generators.random_tree(DUEL_N, seed=7)
    results = churn_duel(
        tree,
        [ForgivingTreeHealer, SurrogateHealer, LineHealer, BinaryTreeHealer],
        lambda: GrowthThenMassacreAdversary(growth=DUEL_GROWTH, seed=7),
        events=DUEL_GROWTH + DUEL_N // 2,
    )
    return [
        [
            name,
            res.n_inserts,
            res.n_deletes,
            res.peak_degree_increase,
            res.peak_diameter,
            res.stayed_connected,
        ]
        for name, res in sorted(results.items())
    ]


def test_churn_benchmarks(benchmark, capsys):
    scale_rows = benchmark.pedantic(run_scale_sweep, rounds=1, iterations=1)
    duel_rows = run_churn_duel()

    # The guarantees hold at every scale sampled.
    for row in scale_rows:
        assert row[3] <= 3  # peak degree increase
        assert row[5] is True  # stayed connected
    # Messages per node stay flat from n=100 to the largest size.
    assert scale_rows[-1][4] <= scale_rows[0][4] + 6

    by_name = {r[0]: r for r in duel_rows}
    assert by_name["forgiving-tree"][3] <= 3
    assert by_name["forgiving-tree"][5] is True
    assert by_name["surrogate"][3] > 3  # degree blow-up survives churn

    emit(capsys, report.banner("EXP-CHURN-SCALE  random churn, p_insert=0.5"))
    emit(
        capsys,
        report.format_table(
            ["n0", "events", "final n", "peak ∆deg", "peak msg/node",
             "connected", "µs/event"],
            scale_rows,
        ),
    )
    emit(
        capsys,
        report.banner(
            f"EXP-CHURN-DUEL  growth({DUEL_GROWTH}) then hub massacre on "
            f"random-tree-{DUEL_N}"
        ),
    )
    emit(
        capsys,
        report.format_table(
            ["healer", "inserts", "deletes", "peak ∆deg", "peak diameter",
             "connected"],
            duel_rows,
        ),
    )


if __name__ == "__main__":
    # Standalone mode: PYTHONPATH=src python -m benchmarks.bench_churn
    for banner, rows, headers in (
        (
            "EXP-CHURN-SCALE  random churn, p_insert=0.5",
            run_scale_sweep(),
            ["n0", "events", "final n", "peak ∆deg", "peak msg/node",
             "connected", "µs/event"],
        ),
        (
            f"EXP-CHURN-DUEL  growth({DUEL_GROWTH}) then hub massacre",
            run_churn_duel(),
            ["healer", "inserts", "deletes", "peak ∆deg", "peak diameter",
             "connected"],
        ),
    ):
        print(report.banner(banner))
        print(report.format_table(headers, rows))
