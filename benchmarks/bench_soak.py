"""EXP-SOAK — long-horizon checkpointed campaigns under the full telemetry stack.

Four experiments:

* **EXP-SOAK-RSS** — one long soak through :class:`repro.soak.SoakService`
  (generator workload, streaming sinks, SLO watchdog, per-window
  checkpoints, ``keep_rounds=False``): resident memory must stay ~flat
  across the run — every in-memory structure (window registry, recorder
  ring, sampling tracer, rotating sink) is bounded, so RSS at the last
  window is compared against the quarter-point (skipping allocator
  warm-up).
* **EXP-SOAK-RESUME** — a real ``SIGKILL`` mid-campaign, then a resume
  from the surviving hash-chained checkpoint: the restored engine
  cross-validates against its object-core oracle, and the finished
  resumed run's deterministic summary must equal an unbroken run of the
  same config bit-for-bit.
* **EXP-SOAK-BREACH** — a seeded SLO breach (absurdly tight stretch
  budget): the watchdog emits alert records and the one-shot
  flight-recorder dump names the replayable event window.
* **EXP-SOAK-CHECKPOINT** — snapshot cost: FTSNAP1 blob size and
  encode/append wall time per engine size, plus the content-addressed
  dedupe append (same state twice -> one object).

Results are dumped to ``benchmarks/out/BENCH_soak.json``.  Quick mode
(``CHURN_BENCH_QUICK=1``) shrinks the soak to CI-smoke size; the
committed artifact is a full run (n0=100k, 500k events).
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

from repro.churn import GeneratorConfig, TraceGenerator
from repro.baselines import ForgivingTreeHealer
from repro.graphs import generators
from repro.harness import report
from repro.soak import SnapshotStore, SoakConfig, SoakService, encode_state

from benchmarks.conftest import QUICK, dump_bench, emit, table

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOAK_N0 = 20_000 if QUICK else 100_000
SOAK_EVENTS = 60_000 if QUICK else 500_000
SOAK_WINDOW = 2_000 if QUICK else 10_000
SOAK_CKPT_EVERY = 5
RESUME_N0 = 2_000 if QUICK else 10_000
RESUME_EVENTS = 24_000 if QUICK else 60_000
RESUME_WINDOW = 500 if QUICK else 1_000
CKPT_SIZES = (10_000,) if QUICK else (10_000, 100_000)
#: last-window RSS over quarter-point RSS; the flat-memory bar.  The CI
#: runner shares cores, so the in-test bound is generous — the committed
#: full-run artifact is the number that matters.
RSS_MAX_GROWTH = 1.35


def _windows(out_dir):
    """All window records from a soak's telemetry stream (every segment)."""
    records = []
    names = sorted(
        n for n in os.listdir(out_dir)
        if n.startswith("telemetry") and n.endswith(".jsonl")
    )
    for name in names:
        with open(os.path.join(out_dir, name)) as fh:
            for line in fh:
                if not line.strip():
                    continue
                rec = json.loads(line)
                if rec.get("kind") == "window":
                    records.append(rec)
    records.sort(key=lambda r: r["window"])
    return records


def run_soak_rss(out_dir):
    cfg = SoakConfig(
        out_dir=out_dir,
        n0=SOAK_N0,
        events=SOAK_EVENTS,
        seed=11,
        window=SOAK_WINDOW,
        checkpoint_every=SOAK_CKPT_EVERY,
        crossval=0,
        sample_every=1000,
    )
    summary = SoakService(cfg).run()
    windows = _windows(out_dir)
    # Sample ~10 windows evenly for the table; keep first and last.
    step = max(1, len(windows) // 10)
    sampled = windows[::step]
    if sampled[-1] is not windows[-1]:
        sampled.append(windows[-1])
    rss_rows = [
        [
            w["window"],
            w["last_event"],
            w["alive"],
            round(w["op"]["events_per_sec"], 1),
            w["op"]["rss_kb"],
        ]
        for w in sampled
    ]
    quarter = windows[len(windows) // 4]["op"]["rss_kb"]
    last = windows[-1]["op"]["rss_kb"]
    det, op = summary["deterministic"], summary["op"]
    soak_row = [
        cfg.n0,
        det["events_total"],
        det["windows"],
        det["checkpoints"],
        det["peak_degree_increase"],
        round(det["peak_stretch"], 2),
        round(op["events_per_sec"], 1),
        quarter,
        last,
        round(last / quarter, 3) if quarter else 0.0,
    ]
    return soak_row, rss_rows


def run_kill_resume(out_dir):
    """SIGKILL a soak subprocess mid-run, resume, compare to unbroken."""
    split_dir = os.path.join(out_dir, "split")
    whole_dir = os.path.join(out_dir, "whole")
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.soak.run",
            "--out", split_dir,
            "--n0", str(RESUME_N0),
            "--events", str(RESUME_EVENTS),
            "--seed", "17",
            "--window", str(RESUME_WINDOW),
            "--checkpoint-every", "2",
            "--quiet",
        ],
        env=env,
        cwd=REPO,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    manifest = os.path.join(split_dir, "checkpoints", "manifest.jsonl")
    deadline = time.time() + 120
    ckpts = 0
    while time.time() < deadline:
        if os.path.exists(manifest):
            with open(manifest) as fh:
                ckpts = sum(1 for line in fh if line.strip())
            if ckpts >= 2:
                break
        if proc.poll() is not None:
            break
        time.sleep(0.05)
    if proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
    proc.wait()
    assert ckpts >= 2, "soak subprocess never reached two checkpoints"

    cfg = SoakConfig.load(os.path.join(split_dir, "config.json"))
    resumed = SoakService(cfg)
    t0 = time.perf_counter()
    split_summary = resumed.run()
    resume_wall = time.perf_counter() - t0

    whole_cfg = SoakConfig(**{
        **{f: getattr(cfg, f) for f in cfg.__dataclass_fields__},
        "out_dir": whole_dir,
    })
    whole_summary = SoakService(whole_cfg).run()

    keys = (
        "events_total", "windows", "alerts", "peak_degree_increase",
        "peak_diameter", "peak_stretch", "d0", "final_alive",
    )
    match = all(
        split_summary["deterministic"][k] == whole_summary["deterministic"][k]
        for k in keys
    )
    crossval = resumed.crossval_result or {}
    row = [
        ckpts,
        split_summary["deterministic"]["events_total"]
        - split_summary["deterministic"]["segment_events"],
        crossval.get("events", 0),
        bool(crossval.get("ok")),
        split_summary["deterministic"]["events_total"],
        split_summary["deterministic"]["windows"],
        match,
        round(resume_wall, 2),
    ]
    return row, split_summary, whole_summary


def run_breach(out_dir):
    """A stretch budget no overlay can meet: every window must alert."""
    cfg = SoakConfig(
        out_dir=out_dir,
        n0=500,
        events=2_000,
        seed=23,
        window=500,
        crossval=0,
        sample_every=50,
        slo_max_stretch=1.01,
    )
    summary = SoakService(cfg).run()
    det = summary["deterministic"]
    assert det["slo_breached"], "seeded breach did not fire"
    alerts = []
    with open(os.path.join(out_dir, "telemetry.jsonl")) as fh:
        for line in fh:
            rec = json.loads(line)
            if rec.get("kind") == "alert":
                alerts.append(rec)
    first = alerts[0]
    with open(first["recorder_dump"]) as fh:
        dump = [json.loads(line) for line in fh if line.strip()]
    header = dump[0]
    return [
        [
            first["slo"],
            first["threshold"],
            round(first["observed"], 2),
            first["window"],
            first["first_event"],
            first["last_event"],
            len(dump) - 1,
            header["first_id"],
            header["last_id"],
        ]
    ], det["alerts"]


def run_checkpoint_cost(out_dir):
    rows = []
    for n0 in CKPT_SIZES:
        gen = TraceGenerator(GeneratorConfig(n0=n0, seed=7))
        healer = ForgivingTreeHealer(gen.build_initial())
        for _ in range(50):  # a little churn so wills/surrogates exist
            event = gen.next()
            if hasattr(event, "attach_to"):
                healer.insert(event.nid, event.attach_to)
            elif hasattr(event, "joiners"):
                healer.insert_batch(event.joiners)
            else:
                healer.delete(event.nid)
        state = healer.engine.snapshot_state()
        t0 = time.perf_counter()
        blob = encode_state(state)
        encode_ms = 1e3 * (time.perf_counter() - t0)
        store = SnapshotStore(os.path.join(out_dir, f"ckpt-{n0}"))
        tracker_state = {"ids": [0], "parents": [-1], "chords": []}
        t0 = time.perf_counter()
        store.append(100, state, tracker_state)
        append_ms = 1e3 * (time.perf_counter() - t0)
        t0 = time.perf_counter()
        store.append(200, state, tracker_state)  # dedupe: same content
        dedupe_ms = 1e3 * (time.perf_counter() - t0)
        assert store.verify() == 2
        rows.append(
            [
                n0,
                round(len(blob) / 1024, 1),
                round(encode_ms, 2),
                round(append_ms, 2),
                round(dedupe_ms, 2),
            ]
        )
    return rows


SOAK_HEADERS = ["n0", "events", "windows", "checkpoints", "peak_ddeg",
                "peak_stretch", "events_per_sec", "rss_q1_kb", "rss_last_kb",
                "rss_growth"]
RSS_HEADERS = ["window", "last_event", "alive", "events_per_sec", "rss_kb"]
RESUME_HEADERS = ["ckpts_at_kill", "resumed_at", "crossval_events",
                  "crossval_ok", "events_total", "windows",
                  "deterministic_match", "resume_wall_s"]
BREACH_HEADERS = ["slo", "threshold", "observed", "window", "first_event",
                  "last_event", "dump_held", "dump_first_id", "dump_last_id"]
CKPT_HEADERS = ["n0", "blob_kb", "encode_ms", "append_ms", "dedupe_append_ms"]


def _check_guarantees(soak_row, resume_row, breach_rows, n_alerts):
    # Theorem 1.1 budget holds across the whole soak.
    assert soak_row[4] <= 3
    # Flat memory: bounded structures => bounded RSS.
    assert soak_row[9] <= RSS_MAX_GROWTH, (
        f"RSS grew {soak_row[9]}x from the quarter-point to the last window "
        f"(bar: {RSS_MAX_GROWTH}x)"
    )
    # Resume: cross-validation ran and passed; determinism contract held.
    assert resume_row[2] > 0 and resume_row[3] is True
    assert resume_row[6] is True
    # Breach: the alert names the replayable window and the dump covers it.
    assert n_alerts >= 1
    first = breach_rows[0]
    assert first[7] <= first[4] and first[8] >= first[5] - 1


def _dump_json(soak_row, rss_rows, resume_row, breach_rows, ckpt_rows):
    return dump_bench(
        "soak",
        {
            "soak": table(SOAK_HEADERS, [soak_row]),
            "rss": table(RSS_HEADERS, rss_rows),
            "resume": table(RESUME_HEADERS, [resume_row]),
            "breach": table(BREACH_HEADERS, breach_rows),
            "checkpoint_cost": table(CKPT_HEADERS, ckpt_rows),
        },
        soak_events=SOAK_EVENTS,
        rss_max_growth=RSS_MAX_GROWTH,
    )


def _run_all():
    tmp = tempfile.mkdtemp(prefix="bench_soak_")
    try:
        soak_row, rss_rows = run_soak_rss(os.path.join(tmp, "rss"))
        resume_row, _, _ = run_kill_resume(os.path.join(tmp, "resume"))
        breach_rows, n_alerts = run_breach(os.path.join(tmp, "breach"))
        ckpt_rows = run_checkpoint_cost(tmp)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return soak_row, rss_rows, resume_row, breach_rows, n_alerts, ckpt_rows


def _print_all(printer, soak_row, rss_rows, resume_row, breach_rows,
               ckpt_rows):
    printer(report.banner(
        f"EXP-SOAK-RSS  checkpointed soak, n0={SOAK_N0}, "
        f"{SOAK_EVENTS} events"
    ))
    printer(report.format_table(SOAK_HEADERS, [soak_row]))
    printer(report.format_table(RSS_HEADERS, rss_rows))
    printer(report.banner("EXP-SOAK-RESUME  SIGKILL mid-run, resume, "
                          "cross-validate, compare to unbroken"))
    printer(report.format_table(RESUME_HEADERS, [resume_row]))
    printer(report.banner("EXP-SOAK-BREACH  seeded stretch-SLO breach"))
    printer(report.format_table(BREACH_HEADERS, breach_rows))
    printer(report.banner("EXP-SOAK-CHECKPOINT  FTSNAP1 snapshot cost"))
    printer(report.format_table(CKPT_HEADERS, ckpt_rows))


def test_soak_benchmarks(benchmark, capsys):
    (soak_row, rss_rows, resume_row, breach_rows, n_alerts,
     ckpt_rows) = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    _check_guarantees(soak_row, resume_row, breach_rows, n_alerts)
    _dump_json(soak_row, rss_rows, resume_row, breach_rows, ckpt_rows)
    _print_all(lambda text: emit(capsys, text), soak_row, rss_rows,
               resume_row, breach_rows, ckpt_rows)


if __name__ == "__main__":
    # Standalone mode: PYTHONPATH=src python -m benchmarks.bench_soak
    (_soak, _rss, _resume, _breach, _n_alerts, _ckpt) = _run_all()
    _print_all(print, _soak, _rss, _resume, _breach, _ckpt)
    _check_guarantees(_soak, _resume, _breach, _n_alerts)
    print(f"\nwrote {_dump_json(_soak, _rss, _resume, _breach, _ckpt)}")
