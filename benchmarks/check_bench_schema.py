"""Validate the ``benchmarks/out/BENCH_*.json`` artifact contract.

Every benchmark dumps its tables through :func:`benchmarks.conftest.dump_bench`,
and downstream consumers (the baseline gates, the CI artifact diff, ad-hoc
plotting) all assume the same shape:

* the artifact is a JSON **object** with a boolean ``quick`` flag, so a
  baseline diff always knows which regime produced it;
* it contains at least one **table** — a dict with ``headers`` (non-empty,
  unique, non-empty strings) and ``rows`` (rectangular: every row exactly
  ``len(headers)`` cells) — either top-level (``BENCH_stretch.json``) or
  nested one level down;
* cells are JSON scalars (lists of scalars are allowed for structured
  columns, e.g. edge lists); floats are finite; and **numeric columns are
  numeric** — a string cell that parses as a number (modulo the ``x``/``%``
  display suffixes :func:`~benchmarks.conftest._coerce` strips) means a
  benchmark bypassed :func:`~benchmarks.conftest.table` and regressed the
  numbers-not-strings contract;
* each table carries at least one numeric cell (these are measurements,
  not prose).

Usage::

    python benchmarks/check_bench_schema.py                # all BENCH_*.json
    python benchmarks/check_bench_schema.py out/BENCH_obs.json
    python benchmarks/check_bench_schema.py --min 17       # also gate count

Exits non-zero on any violation; CI's bench-smoke job runs it over the
artifacts the quick benches just regenerated.
"""

import argparse
import glob
import json
import math
import os
import sys
from typing import Any, List, Tuple

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")

SCALARS = (str, int, float, bool, type(None))


def _parses_as_number(cell: str) -> bool:
    """True when ``_coerce`` would have turned this display string numeric."""
    body = cell[:-1] if cell.endswith(("x", "%")) else cell
    try:
        return math.isfinite(float(body))
    except ValueError:
        return False


def _scalar_leaves(value: Any) -> bool:
    if isinstance(value, list):
        return all(_scalar_leaves(v) for v in value)
    return isinstance(value, SCALARS)


def check_table(name: str, tbl: dict, problems: List[str]) -> int:
    """Validate one ``{"headers": ..., "rows": ...}`` payload; return row count."""
    headers = tbl.get("headers")
    rows = tbl.get("rows")
    if not isinstance(headers, list) or not headers:
        problems.append(f"{name}: headers must be a non-empty list")
        return 0
    if any(not isinstance(h, str) or not h.strip() for h in headers):
        problems.append(f"{name}: headers must all be non-empty strings")
    if len(set(headers)) != len(headers):
        problems.append(f"{name}: duplicate header names {headers}")
    if not isinstance(rows, list):
        problems.append(f"{name}: rows must be a list")
        return 0
    numeric_cells = 0
    for r, row in enumerate(rows):
        if not isinstance(row, list):
            problems.append(f"{name} row {r}: not a list")
            continue
        if len(row) != len(headers):
            problems.append(
                f"{name} row {r}: {len(row)} cells for {len(headers)} headers"
            )
        for c, cell in enumerate(row):
            col = headers[c] if c < len(headers) else f"#{c}"
            if isinstance(cell, bool):
                pass  # bools are fine (and are ints, so order matters here)
            elif isinstance(cell, (int, float)):
                numeric_cells += 1
                if isinstance(cell, float) and not math.isfinite(cell):
                    problems.append(f"{name} row {r} [{col}]: non-finite {cell}")
            elif isinstance(cell, str):
                if _parses_as_number(cell):
                    problems.append(
                        f"{name} row {r} [{col}]: numeric value stored as "
                        f"string {cell!r} (bench bypassed conftest.table?)"
                    )
            elif isinstance(cell, list):
                # Structured cells (e.g. figure5's edge lists) are fine as
                # long as their leaves are scalars.
                if not _scalar_leaves(cell):
                    problems.append(
                        f"{name} row {r} [{col}]: list cell with "
                        f"non-scalar leaves"
                    )
            elif not isinstance(cell, SCALARS):
                problems.append(
                    f"{name} row {r} [{col}]: non-scalar cell "
                    f"({type(cell).__name__})"
                )
    if rows and not numeric_cells:
        problems.append(f"{name}: a measurement table with no numeric cells")
    return len(rows)


def _is_table(value: Any) -> bool:
    return isinstance(value, dict) and "headers" in value and "rows" in value


def check_artifact(path: str) -> Tuple[int, int, List[str]]:
    """Validate one artifact; returns (tables, rows, problems)."""
    problems: List[str] = []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return 0, 0, [f"unreadable: {exc}"]
    if not isinstance(doc, dict):
        return 0, 0, ["artifact is not a JSON object"]
    if not isinstance(doc.get("quick"), bool):
        problems.append("missing/non-boolean 'quick' regime flag")

    tables = 0
    rows = 0
    if _is_table(doc):  # BENCH_stretch keeps its table at top level
        tables += 1
        rows += check_table("<top-level>", doc, problems)
    for key, value in doc.items():
        if _is_table(value):
            tables += 1
            rows += check_table(key, value, problems)
    if not tables:
        problems.append("no {'headers': ..., 'rows': ...} table found")
    return tables, rows, problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/check_bench_schema.py",
        description="Validate BENCH_*.json artifacts against the dump_bench contract.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="artifacts to check (default: benchmarks/out/BENCH_*.json)",
    )
    parser.add_argument(
        "--min", type=int, default=0,
        help="fail unless at least this many artifacts were checked",
    )
    opts = parser.parse_args(argv)

    paths = opts.paths or sorted(glob.glob(os.path.join(OUT_DIR, "BENCH_*.json")))
    failed = False
    for path in paths:
        tables, rows, problems = check_artifact(path)
        name = os.path.basename(path)
        if problems:
            failed = True
            print(f"FAIL  {name}")
            for problem in problems:
                print(f"      - {problem}")
        else:
            print(f"ok    {name}  ({tables} tables, {rows} rows)")
    if len(paths) < opts.min:
        print(f"FAIL  only {len(paths)} artifacts found, expected >= {opts.min}")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
