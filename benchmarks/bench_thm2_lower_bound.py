"""EXP-T2-LB — Theorem 2: any (α, β) healer on the star obeys α^(2β+1) ≥ ∆.

Measures (α, β) for every healer after deleting the star's center and
checks the lower-bound inequality; also reports the Forgiving Tree's
measured β against the Section 4.2 promise β ≤ 2·log_α ∆ + 2.
"""

import math

from repro.baselines import (
    BinaryTreeHealer,
    ForgivingTreeHealer,
    LineHealer,
    SurrogateHealer,
)
from repro.graphs import generators, metrics
from repro.graphs.adjacency import is_connected
from repro.harness import bounds, report

from benchmarks.conftest import dump_bench, emit, table

DELTAS = (8, 32, 128, 512)
HEALERS = (ForgivingTreeHealer, SurrogateHealer, LineHealer, BinaryTreeHealer)


def run_sweep():
    rows = []
    for delta in DELTAS:
        tree = generators.star(delta)
        for make in HEALERS:
            healer = make({k: set(v) for k, v in tree.items()})
            healer.delete(0)
            g = healer.graph()
            assert is_connected(g)
            alpha = max(3, healer.max_degree_increase())
            beta = metrics.diameter_exact(g) / 2  # star diameter is 2
            holds = bounds.thm2_lower_bound_holds(alpha, beta, delta)
            rows.append(
                [
                    delta,
                    make.name,
                    alpha,
                    f"{beta:.1f}",
                    f"{bounds.thm2_min_stretch(alpha, delta):.2f}",
                    "OK" if holds else "VIOLATION",
                ]
            )
    return rows


def test_thm2_lower_bound(benchmark, capsys):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    assert all(r[5] == "OK" for r in rows)
    dump_bench(
        "thm2_lower_bound",
        {"sweep": table(
            ["delta", "healer", "alpha", "beta", "beta_floor", "verdict"], rows
        )},
    )
    emit(capsys, report.banner("EXP-T2-LB  Theorem 2: α^(2β+1) ≥ ∆ on the star"))
    emit(
        capsys,
        report.format_table(
            ["∆", "healer", "α", "β measured", "β floor (Thm 2)", "verdict"], rows
        ),
    )
    # Section 4.2 comparison for the Forgiving Tree.
    ft_rows = [r for r in rows if r[1] == "forgiving-tree"]
    emit(
        capsys,
        "\nForgiving Tree's β vs the §4.2 promise 2·log_α ∆ + 2: "
        + ", ".join(
            f"∆={r[0]}: {r[3]} ≤ {2 * math.log(r[0], int(r[2])) + 2:.1f}"
            for r in ft_rows
        ),
    )
