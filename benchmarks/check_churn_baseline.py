#!/usr/bin/env python3
"""Gate the EXP-CHURN-LADDER scaling baseline.

The ladder (``bench_churn.run_flat_ladder``) plays sustained random churn
at n ∈ {10k, 100k, 1M} (quick mode: {10k, 50k}) through the production
path and records µs/event per rung.  Per-event healing is O(log n) local
work on the flat core, so the cost must stay ~flat as n grows 100x: the
gate fails when the top rung costs more than ``MAX_GROWTH``× the bottom
rung.  Wall times are machine-dependent, so only the *ratio* within one
artifact is gated — committed and fresh artifacts are never compared
row-by-row (they usually come from different machines and, in CI, from
different regimes: the committed baseline is a full-mode run containing
the 1M rung, the fresh artifact a quick-mode smoke).

Structural columns are absolute and machine-independent, so those are
gated exactly on both artifacts: every rung must stay connected and keep
peak degree increase ≤ 3 (Forgiving Tree guarantee: ≤ b + 1 = 3).

Usage::

    python benchmarks/check_churn_baseline.py COMMITTED [FRESH]

``COMMITTED`` is held to ``MAX_GROWTH``; the optional ``FRESH`` artifact
(the one CI just produced) gets ``FRESH_SLACK``× extra headroom for
shared-runner scheduling noise.  Exit status 1 on any violation.  When
``GITHUB_STEP_SUMMARY`` is set, a markdown report is appended to it as
well as printed.
"""

from __future__ import annotations

import json
import os
import sys

#: Allowed µs/event growth across the committed ladder (top rung over
#: bottom rung).  The flat core holds ~1.2x over 10k → 1M; 2.0 leaves
#: room for cache effects at the top rung without letting a reintroduced
#: O(n)-per-event path (which would show up as ~100x) anywhere near.
MAX_GROWTH = 2.0

#: Extra multiplier for the artifact CI just produced on a noisy shared
#: runner (gate: MAX_GROWTH * FRESH_SLACK).
FRESH_SLACK = 1.5

#: Forgiving Tree degree guarantee: increase ≤ b + 1 with b = 2.
MAX_DEGREE_INCREASE = 3


def load_ladder(path: str) -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if "ladder" not in data:
        raise SystemExit(f"{path}: no 'ladder' section (regenerate the bench)")
    ladder = data["ladder"]
    if len(ladder.get("rows", [])) < 2:
        raise SystemExit(f"{path}: ladder needs >= 2 rungs to gate growth")
    return ladder


def columns(ladder: dict) -> dict:
    return {name: i for i, name in enumerate(ladder["headers"])}


def check(label: str, path: str, max_growth: float) -> tuple:
    """Return (problems, summary_line) for one artifact."""
    ladder = load_ladder(path)
    col = columns(ladder)
    rows = sorted(ladder["rows"], key=lambda r: r[col["n0"]])
    problems = []
    for row in rows:
        n0 = row[col["n0"]]
        if not isinstance(row[col["us_per_event"]], (int, float)):
            problems.append(
                f"{label}: n={n0}: us_per_event is "
                f"{row[col['us_per_event']]!r}, not a number — the artifact "
                "was written by a serializer that stringifies cells"
            )
        if row[col["connected"]] is not True:
            problems.append(f"{label}: n={n0}: overlay disconnected")
        if row[col["peak_ddeg"]] > MAX_DEGREE_INCREASE:
            problems.append(
                f"{label}: n={n0}: peak degree increase "
                f"{row[col['peak_ddeg']]} > {MAX_DEGREE_INCREASE}"
            )
    if problems:
        return problems, ""
    bottom, top = rows[0], rows[-1]
    growth = top[col["us_per_event"]] / max(bottom[col["us_per_event"]], 1e-9)
    line = (
        f"{label}: n={bottom[col['n0']]:,} → {top[col['n0']]:,}: "
        f"{bottom[col['us_per_event']]} → {top[col['us_per_event']]} µs/event "
        f"({growth:.2f}x, bar {max_growth}x)"
    )
    if growth > max_growth:
        problems.append(
            f"{label}: per-event cost grew {growth:.2f}x from "
            f"n={bottom[col['n0']]:,} to n={top[col['n0']]:,} "
            f"(bar: {max_growth}x) — the sequential hot path regressed"
        )
    return problems, line


def main(argv: list) -> int:
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    problems, lines = [], []
    p, line = check("committed", argv[1], MAX_GROWTH)
    problems += p
    if line:
        lines.append(line)
    if len(argv) == 3:
        p, line = check("fresh", argv[2], MAX_GROWTH * FRESH_SLACK)
        problems += p
        if line:
            lines.append(line)
    if problems:
        out = ["## EXP-CHURN-LADDER regression", ""]
        out += [f"- {p}" for p in problems]
        out.append(
            "\nIf a real change moved the baseline, regenerate the full "
            "ladder with `PYTHONPATH=src python -m benchmarks.bench_churn` "
            "(no CHURN_BENCH_QUICK — the committed baseline must contain "
            "the 1M rung) and commit `benchmarks/out/BENCH_churn.json`."
        )
    else:
        out = ["## EXP-CHURN-LADDER scaling", ""]
        out += [f"- {line}" for line in lines]
    text = "\n".join(out)
    print(text)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as fh:
            fh.write(text + "\n")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
