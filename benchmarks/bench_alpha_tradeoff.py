"""EXP-TRADEOFF — Section 4.2: degree cap α vs diameter stretch β.

Sweeps α on high-degree stars: measured β must sit between the Theorem 2
floor and the §4.2 promise 2·log_α ∆ + 2, decreasing as α grows.
"""

from repro.extensions import AlphaForgivingTree, tradeoff_point
from repro.graphs import generators, metrics
from repro.harness import bounds, report

from benchmarks.conftest import dump_bench, emit, table

DELTA = 512
ALPHAS = (3, 4, 5, 7, 9)
HEADERS = ["α", "b", "measured ∆deg", "β measured", "β floor (Thm2)", "β promise (§4.2)"]


def run_sweep():
    rows = []
    tree = generators.star(DELTA)
    for alpha in ALPHAS:
        ft = AlphaForgivingTree(tree, alpha=alpha)
        ft.delete(0)
        beta = metrics.diameter_exact(ft.adjacency()) / 2
        point = tradeoff_point(alpha, DELTA)
        rows.append(
            [
                alpha,
                point["branching"],
                ft.max_degree_increase(),
                f"{beta:.1f}",
                f"{point['beta_floor_thm2']:.2f}",
                f"{point['beta_promise']:.1f}",
            ]
        )
    return rows


def test_alpha_tradeoff(benchmark, capsys):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    betas = [float(r[3]) for r in rows]
    assert betas == sorted(betas, reverse=True) or len(set(betas)) < len(betas)
    for r in rows:
        assert r[2] <= r[0]  # degree increase within α
        assert float(r[3]) <= float(r[5]) + 1  # within the §4.2 promise
    dump_bench("alpha_tradeoff", {"tradeoff": table(HEADERS, rows)}, delta=DELTA)
    emit(capsys, report.banner(f"EXP-TRADEOFF  §4.2 on star-{DELTA}"))
    emit(capsys, report.format_table(HEADERS, rows))
