"""EXP-T1-DEG — Theorem 1.1: degree increase never exceeds 3.

Sweeps graph families × adversaries, full campaigns; reports the peak
degree increase per cell against the bound (3), plus the surrogate
baseline's blow-up on the same attack for contrast.
"""

from repro.adversaries import (
    MaxDegreeAdversary,
    MinDegreeAdversary,
    RandomAdversary,
    SurrogateKillerAdversary,
)
from repro.baselines import ForgivingTreeHealer, SurrogateHealer
from repro.graphs import generators
from repro.harness import bounds, report, run_campaign

from benchmarks.conftest import dump_bench, emit, table

FAMILIES = ["star", "path", "random", "binary", "broom", "caterpillar"]
ADVERSARIES = {
    "random": lambda: RandomAdversary(1),
    "max-degree": MaxDegreeAdversary,
    "min-degree": MinDegreeAdversary,
    "surrogate-killer": SurrogateKillerAdversary,
}
N = 120


def run_sweep():
    rows = []
    for family in FAMILIES:
        tree = generators.TREE_FAMILIES[family](N, 7)
        for adv_name, make_adv in ADVERSARIES.items():
            healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
            result = run_campaign(healer, make_adv(), measure_diameter=False)
            rows.append(
                [
                    family,
                    adv_name,
                    result.n0,
                    result.peak_degree_increase,
                    bounds.thm1_degree_bound(),
                    "OK" if result.peak_degree_increase <= 3 else "VIOLATION",
                ]
            )
    return rows


def test_thm1_degree_bound(benchmark, capsys):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    assert all(r[5] == "OK" for r in rows)

    # Contrast: surrogate healing under the same killer attack.
    tree = generators.star(N)
    surrogate = run_campaign(
        SurrogateHealer({k: set(v) for k, v in tree.items()}),
        SurrogateKillerAdversary(),
        rounds=N // 2,
        measure_diameter=False,
    )
    dump_bench(
        "thm1_degree",
        {"sweep": table(
            ["family", "adversary", "n", "peak_ddeg", "bound", "verdict"], rows
        )},
        surrogate_peak_ddeg=surrogate.peak_degree_increase,
    )
    emit(capsys, report.banner("EXP-T1-DEG  Theorem 1.1: max degree increase <= 3"))
    emit(
        capsys,
        report.format_table(
            ["family", "adversary", "n", "peak ∆deg", "bound", "verdict"], rows
        ),
    )
    emit(
        capsys,
        f"\ncontrast (same attack, surrogate healing on star-{N}): "
        f"peak ∆deg = {surrogate.peak_degree_increase}  [Θ(n) as the intro claims]",
    )
