"""EXP-SETUP — the one-time setup phase costs.

Latency ~ diameter; messages per edge O(log n) w.h.p. (Cohen-style
min-label flooding); O(1) per tree edge for the initial wills.
"""

import math

from repro.distributed import DistributedForgivingTree
from repro.distributed.setup import distributed_bfs_setup
from repro.graphs import generators, metrics
from repro.harness import bounds, report

from benchmarks.conftest import dump_bench, emit, table

CASES = [
    ("gnp", lambda n: generators.random_connected_gnp(n, min(1.0, 8 / n), seed=n)),
    ("grid", lambda n: generators.grid(int(n**0.5), int(n**0.5))),
    ("pa", lambda n: generators.preferential_attachment(n, 2, seed=n)),
]
SIZES = (64, 256, 1024)


def run_sweep():
    rows = []
    for name, factory in CASES:
        for n in SIZES:
            g = factory(n)
            d = metrics.diameter_double_sweep(g, seed=1)
            rep = distributed_bfs_setup(g, seed=n)
            rows.append(
                [
                    name,
                    len(g),
                    d,
                    rep.latency,
                    rep.max_messages_per_edge,
                    f"{rep.mean_messages_per_edge:.1f}",
                    f"{bounds.setup_messages_bound(len(g)):.0f}",
                ]
            )
    return rows


def test_setup_phase_costs(benchmark, capsys):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    for row in rows:
        n = row[1]
        assert row[4] <= 6 * math.log2(n) + 8  # O(log n) per edge
        assert row[3] <= 4 * row[2] + 6  # latency O(diameter)

    # Will distribution: O(1) per tree edge (measured by the runtime).
    tree = generators.random_tree(24, seed=2)
    dist = DistributedForgivingTree(tree)
    per_edge = dist.setup_stats.total_messages / (len(tree) - 1)

    dump_bench(
        "setup_phase",
        {
            "bfs_setup": table(
                ["graph", "n", "diam", "latency", "max_msg_edge",
                 "mean_msg_edge", "log_n_ref"],
                rows,
            )
        },
        will_messages_per_edge=round(per_edge, 2),
    )
    emit(capsys, report.banner("EXP-SETUP  BFS setup: latency & messages"))
    emit(
        capsys,
        report.format_table(
            ["graph", "n", "diam", "latency", "max msg/edge", "mean msg/edge", "O(log n) ref"],
            rows,
        ),
    )
    emit(capsys, f"\nwill distribution: {per_edge:.1f} messages per tree edge (O(1))")
