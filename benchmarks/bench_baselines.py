"""EXP-BASE-DEG / EXP-BASE-DIAM — the introduction's baseline failures.

Head-to-head duels on the same graph under the same adversary:

* surrogate healing suffers Θ(n) degree increase (the Forgiving Tree: 3);
* line and uncoordinated binary-tree healing suffer large diameter growth
  (the Forgiving Tree: the log ∆ envelope).
"""

from repro.adversaries import DiameterGreedyAdversary, SurrogateKillerAdversary
from repro.baselines import (
    BinaryTreeHealer,
    ForgivingTreeHealer,
    LineHealer,
    SurrogateHealer,
)
from repro.graphs import generators, metrics
from repro.harness import duel, report

from benchmarks.conftest import dump_bench, emit, table


def run_degree_duel():
    n = 120
    tree = generators.star(n)
    results = duel(
        tree,
        [ForgivingTreeHealer, SurrogateHealer, LineHealer],
        SurrogateKillerAdversary,
        rounds=n // 2,
    )
    return [
        [name, res.peak_degree_increase, res.peak_diameter]
        for name, res in sorted(results.items())
    ]


def run_diameter_duel():
    tree = generators.broom(6, 40)
    d0 = metrics.diameter_exact(tree)
    results = duel(
        tree,
        [ForgivingTreeHealer, LineHealer, BinaryTreeHealer],
        lambda: DiameterGreedyAdversary(max_candidates=12),
        rounds=24,
    )
    return d0, [
        [name, res.peak_diameter, f"{res.peak_stretch:.2f}x", res.peak_degree_increase]
        for name, res in sorted(results.items())
    ]


def test_baseline_failures(benchmark, capsys):
    deg_rows = benchmark.pedantic(run_degree_duel, rounds=1, iterations=1)
    d0, diam_rows = run_diameter_duel()

    by_name = {r[0]: r for r in deg_rows}
    assert by_name["surrogate"][1] >= 40  # Θ(n) blow-up
    assert by_name["forgiving-tree"][1] <= 3

    diam_by_name = {r[0]: r for r in diam_rows}
    assert diam_by_name["line"][1] > diam_by_name["forgiving-tree"][1]

    dump_bench(
        "baselines",
        {
            "degree_duel": table(["healer", "peak_ddeg", "peak_diameter"], deg_rows),
            "diameter_duel": table(
                ["healer", "peak_diameter", "stretch", "peak_ddeg"], diam_rows
            ),
        },
        d0=d0,
    )
    emit(capsys, report.banner("EXP-BASE-DEG  surrogate-killer on star-120"))
    emit(
        capsys,
        report.format_table(["healer", "peak ∆deg", "peak diameter"], deg_rows),
    )
    emit(
        capsys,
        report.banner(f"EXP-BASE-DIAM  diameter-greedy on broom (D0={d0})"),
    )
    emit(
        capsys,
        report.format_table(
            ["healer", "peak diameter", "stretch", "peak ∆deg"], diam_rows
        ),
    )
