"""Tests for generators, metrics and spanning trees (networkx as oracle)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import DisconnectedGraphError, EmptyStructureError
from repro.graphs import adjacency as adj
from repro.graphs import generators as gen
from repro.graphs import metrics, spanning


class TestGenerators:
    def test_star(self):
        g = gen.star(5)
        assert adj.degrees(g)[0] == 5
        assert adj.edge_count(g) == 5

    def test_path_and_cycle(self):
        assert metrics.diameter_exact(gen.path(7)) == 6
        assert adj.edge_count(gen.cycle(7)) == 7

    def test_balanced_tree(self):
        g = gen.balanced_tree(2, 3)
        assert len(g) == 15
        assert adj.edge_count(g) == 14

    def test_random_tree_is_tree(self):
        for seed in range(10):
            g = gen.random_tree(25, seed)
            assert adj.edge_count(g) == 24
            assert adj.is_connected(g)

    def test_prufer_decode_matches_networkx(self):
        seq = [3, 3, 3, 4]
        ours = gen.tree_from_prufer(seq)
        theirs = adj.from_networkx(nx.from_prufer_sequence(seq))
        assert ours == theirs

    def test_caterpillar_broom_spider(self):
        assert adj.is_connected(gen.caterpillar(5, 3))
        assert adj.is_connected(gen.broom(4, 7))
        g = gen.spider(4, 5)
        assert adj.degrees(g)[0] == 4

    def test_gnp_connected(self):
        for seed in range(5):
            g = gen.random_connected_gnp(30, 0.05, seed)
            assert adj.is_connected(g)

    def test_preferential_attachment(self):
        g = gen.preferential_attachment(50, 2, seed=1)
        assert adj.is_connected(g)
        assert max(adj.degrees(g).values()) >= 5  # hubs exist

    def test_grid_and_hypercube(self):
        assert metrics.diameter_exact(gen.grid(4, 4)) == 6
        h = gen.hypercube(4)
        assert all(d == 4 for d in adj.degrees(h).values())
        assert metrics.diameter_exact(h) == 4

    def test_two_level_star(self):
        g = gen.two_level_star(3, 4)
        assert adj.degrees(g)[0] == 3
        assert len(g) == 1 + 3 + 12

    def test_families_registry(self):
        for name, factory in gen.TREE_FAMILIES.items():
            g = factory(30, 1)
            assert adj.is_connected(g), name
            assert adj.edge_count(g) == len(g) - 1, name

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            gen.star(0)
        with pytest.raises(ValueError):
            gen.cycle(2)
        with pytest.raises(ValueError):
            gen.preferential_attachment(3, 3)


class TestMetrics:
    def test_diameter_matches_networkx(self):
        for seed in range(5):
            g = gen.random_connected_gnp(25, 0.15, seed)
            assert metrics.diameter_exact(g) == nx.diameter(adj.to_networkx(g))

    def test_double_sweep_exact_on_trees(self):
        for seed in range(10):
            g = gen.random_tree(40, seed)
            assert metrics.diameter_double_sweep(g, seed) == metrics.diameter_exact(g)

    def test_double_sweep_lower_bounds(self):
        g = gen.random_connected_gnp(30, 0.2, seed=3)
        assert metrics.diameter_double_sweep(g) <= metrics.diameter_exact(g)

    def test_radius_center(self):
        g = gen.path(9)
        assert metrics.radius(g) == 4
        assert metrics.center(g) == {4}

    def test_stretch(self):
        before = gen.path(5)
        after = gen.star(4)  # not meaningful; just arithmetic
        stretches = metrics.pairwise_stretch(before, after)
        assert all(v > 0 for v in stretches.values())

    def test_max_stretch_sampled(self):
        g = gen.random_tree(30, 2)
        assert metrics.max_stretch(g, g, sample=20) == 1.0

    def test_empty_graph_errors(self):
        with pytest.raises(EmptyStructureError):
            metrics.diameter_exact({})

    def test_disconnected_errors(self):
        with pytest.raises(DisconnectedGraphError):
            metrics.eccentricity({0: set(), 1: set()}, 0)

    def test_every_metric_rejects_empty(self):
        for fn in (
            metrics.diameter_exact,
            metrics.diameter_double_sweep,
            metrics.diameter,
            metrics.radius,
            metrics.center,
        ):
            with pytest.raises(EmptyStructureError):
                fn({})

    def test_singleton_graph(self):
        g = {7: set()}
        assert metrics.diameter_exact(g) == 0
        assert metrics.diameter_double_sweep(g) == 0
        assert metrics.diameter(g, exact=False) == 0
        assert metrics.radius(g) == 0
        assert metrics.center(g) == {7}
        assert metrics.eccentricity(g, 7) == 0

    def test_every_metric_rejects_disconnected(self):
        g = {0: {1}, 1: {0}, 2: {3}, 3: {2}}
        with pytest.raises(DisconnectedGraphError):
            metrics.diameter_exact(g)
        with pytest.raises(DisconnectedGraphError):
            metrics.diameter_double_sweep(g)
        with pytest.raises(DisconnectedGraphError):
            metrics.radius(g)
        with pytest.raises(DisconnectedGraphError):
            metrics.center(g)

    def test_diameter_dispatch(self):
        g = gen.random_tree(20, seed=5)
        assert metrics.diameter(g, exact=True) == metrics.diameter_exact(g)
        assert metrics.diameter(g, exact=False, seed=3) == metrics.diameter_double_sweep(
            g, seed=3
        )

    def test_double_sweep_deterministic_per_seed(self):
        g = gen.random_connected_gnp(30, 0.12, seed=7)
        for seed in range(5):
            assert metrics.diameter_double_sweep(g, seed) == metrics.diameter_double_sweep(
                g, seed
            )

    def test_radius_center_on_paths_and_stars(self):
        even = gen.path(10)  # two central nodes
        assert metrics.radius(even) == 5
        assert metrics.center(even) == {4, 5}
        star = gen.star(6)
        assert metrics.radius(star) == 1
        assert metrics.center(star) == {0}
        assert metrics.diameter_exact(star) == 2
        two = gen.path(2)  # every node is central
        assert metrics.radius(two) == 1
        assert metrics.center(two) == {0, 1}

    def test_max_stretch_sampling_determinism(self):
        before = gen.random_tree(40, seed=1)
        after = gen.random_tree(40, seed=2)
        a = metrics.max_stretch(before, after, sample=30, seed=5)
        b = metrics.max_stretch(before, after, sample=30, seed=5)
        assert a == b  # same seed, same sampled pairs
        full = metrics.max_stretch(before, after)
        assert a <= full  # sampling can only miss the max

    def test_max_stretch_degenerate_inputs(self):
        assert metrics.max_stretch({0: set()}, {0: set()}) == 1.0
        assert metrics.max_stretch({0: {1}, 1: {0}}, {5: {6}, 6: {5}}) == 1.0
        assert metrics.max_stretch({0: set()}, {0: set()}, sample=10) == 1.0

    def test_pairwise_stretch_explicit_pairs_and_dead_nodes(self):
        before = gen.path(4)
        after = {0: {1}, 1: {0, 3}, 3: {1}}  # node 2 died, 1-3 bridged
        out = metrics.pairwise_stretch(before, after, pairs=[(0, 3), (1, 3)])
        assert out[(0, 3)] == 2 / 3 and out[(1, 3)] == 1 / 2
        # pairs involving dead nodes are skipped silently
        assert metrics.pairwise_stretch(before, after, pairs=[(0, 2)]) == {}


class TestSpanning:
    def test_bfs_tree_is_shortest_path_tree(self):
        g = gen.random_connected_gnp(30, 0.15, seed=2)
        tree = spanning.bfs_tree(g, root=0)
        gd = adj.bfs_distances(g, 0)
        td = adj.bfs_distances(tree, 0)
        assert gd == td  # BFS tree preserves root distances

    def test_random_spanning_tree(self):
        g = gen.random_connected_gnp(20, 0.3, seed=5)
        t1 = spanning.random_spanning_tree(g, seed=1)
        t2 = spanning.random_spanning_tree(g, seed=2)
        assert adj.edge_count(t1) == len(g) - 1
        assert adj.edge_count(t2) == len(g) - 1
        assert adj.edges(t1) <= adj.edges(g)

    def test_tree_parents_and_height(self):
        tree = gen.balanced_tree(2, 3)
        parents = spanning.tree_parents(tree, 0)
        assert parents[0] is None
        assert spanning.tree_height(tree, 0) == 3

    def test_non_tree_edges(self):
        g = gen.cycle(5)
        t = spanning.bfs_tree(g, 0)
        assert len(spanning.non_tree_edges(g, t)) == 1


class TestAdjacencyOps:
    def test_from_edges_ignores_self_loops(self):
        g = adj.from_edges([(1, 1), (1, 2)])
        assert adj.edge_count(g) == 1

    def test_remove_node(self):
        g = gen.star(3)
        neighbors = adj.remove_node(g, 0)
        assert neighbors == {1, 2, 3}
        assert all(not s for s in g.values())

    def test_roundtrip_networkx(self):
        g = gen.random_connected_gnp(15, 0.2, seed=8)
        assert adj.from_networkx(adj.to_networkx(g)) == g

    def test_relabel(self):
        g = adj.from_edges([(10, 20), (20, 30)])
        out, mapping = adj.relabel_consecutive(g)
        assert set(out) == {0, 1, 2}
        assert mapping[10] == 0

    def test_components(self):
        g = {0: {1}, 1: {0}, 2: set()}
        comps = adj.connected_components(g)
        assert sorted(map(sorted, comps)) == [[0, 1], [2]]


@settings(max_examples=50, deadline=None)
@given(n=st.integers(2, 60), seed=st.integers(0, 10**6))
def test_property_random_tree_diameter_consistency(n, seed):
    g = gen.random_tree(n, seed)
    assert metrics.diameter_double_sweep(g, seed) == metrics.diameter_exact(g)
