"""Tests for the observability substrate (repro.obs) and its wiring.

Covers the ISSUE-6 walls: the shared log-bucketed histogram is *the*
percentile implementation (pinned against the transport summary), the
metrics registry is O(1) and deterministic, the tracer produces
well-formed Perfetto-loadable span trees that are a byte-deterministic
function of the seed across every latency model and scheduler, the
flight recorder turns invariant failures into replayable JSONL windows,
and the harness ``obs=`` knob threads it all through a campaign whose
trace cross-checks bit-for-bit against the transport summary.
"""

import json
import math
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversaries import RandomAdversary
from repro.adversaries.churn import RandomChurnAdversary, ScatterChurnAdversary
from repro.baselines.forgiving import ForgivingTreeHealer
from repro.fgraph.healer import ForgivingGraphHealer
from repro.graphs import generators
from repro.harness import run_campaign, run_churn_campaign
from repro.obs import (
    CONTROL_TRACK,
    NO_TRACE,
    OBS_MODES,
    FlightRecorder,
    LogHistogram,
    MetricsRegistry,
    ObsSpec,
    ObsState,
    PhaseProfiler,
    SpanError,
    Tracer,
    resolve_obs,
    validate_chrome_trace,
)
from repro.simnet import (
    LATENCY_CATALOG,
    SCHEDULER_CATALOG,
    TransportDivergence,
    TransportSpec,
    resolve_transport,
)
from repro.simnet.transport import TransportMirror, TransportSummary


def _tree_graph(n, seed):
    return {k: set(v) for k, v in generators.random_tree(n, seed).items()}


def _heal_spans(tracer):
    """The campaign's per-event heal spans (setup rounds excluded)."""
    return [
        s for s in tracer.spans.values()
        if s.cat == "heal" and not s.name.startswith("heal:round-")
    ]


# ----------------------------------------------------------------------
# the shared histogram
# ----------------------------------------------------------------------
class TestLogHistogram:
    def test_pinned_quantiles(self):
        # The repo's historical nearest-rank convention, pinned: these are
        # the exact numbers every summary in the repo must report.
        s = LogHistogram.from_values([1.0, 2.0, 3.0, 4.0]).summary()
        assert s == {"p50": 3.0, "p90": 4.0, "p99": 4.0,
                     "max": 4.0, "mean": 2.5}

    def test_empty_is_all_zero(self):
        s = LogHistogram().summary()
        assert s == {"p50": 0.0, "p90": 0.0, "p99": 0.0,
                     "max": 0.0, "mean": 0.0}

    def test_exact_extremes_and_mean(self):
        h = LogHistogram.from_values([0.5, 7.25, 100.0])
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx((0.5 + 7.25 + 100.0) / 3)
        assert len(h) == 3

    def test_zero_and_negative_bucket(self):
        h = LogHistogram.from_values([-1.0, 0.0, 2.0])
        assert h.count == 3 and h.min == -1.0 and h.max == 2.0
        # Non-positive values share the zero bucket; its representative
        # is the bucket mean.
        assert h.quantile(0.0) == -0.5
        assert h.n_buckets == 2

    def test_merge_equals_combined(self):
        rng = random.Random(3)
        a = [rng.expovariate(0.2) for _ in range(300)]
        b = [rng.uniform(0.0, 50.0) for _ in range(200)]
        left = LogHistogram.from_values(a)
        left.merge(LogHistogram.from_values(b))
        combined = LogHistogram.from_values(a + b)
        # mean is a streaming float sum: merged and sequential orders may
        # differ in the last ulp, everything else must be identical
        ls, cs = left.summary(), combined.summary()
        assert ls.pop("mean") == pytest.approx(cs.pop("mean"))
        assert ls == cs
        ld, cd = left.to_dict(), combined.to_dict()
        assert ld.pop("mean") == pytest.approx(cd.pop("mean"))
        assert ld == cd

    def test_merge_growth_mismatch_raises(self):
        with pytest.raises(ValueError, match="growth"):
            LogHistogram(growth=2.0).merge(LogHistogram())

    def test_bad_growth_raises(self):
        with pytest.raises(ValueError):
            LogHistogram(growth=1.0)

    def test_quantile_relative_error_bounded(self):
        # Interior quantiles are bucket means: within one bucket width
        # (growth - 1 ~ 9%) of the exact nearest-rank value.
        rng = random.Random(11)
        values = [rng.lognormvariate(1.0, 1.5) for _ in range(1000)]
        h = LogHistogram.from_values(values)
        exact = sorted(values)
        for q in (0.5, 0.9, 0.99):
            want = exact[round(q * (len(exact) - 1))]
            got = h.quantile(q)
            assert abs(got - want) / want <= 0.1

    def test_memory_is_bucket_bounded(self):
        rng = random.Random(7)
        h = LogHistogram()
        for _ in range(100_000):
            h.observe(rng.uniform(1.0, 1000.0))
        assert h.count == 100_000
        # ~8 buckets per octave x log2(1000) octaves, never 100k entries.
        assert h.n_buckets <= 8 * math.log2(1000.0) + 2

    def test_observe_nonpositive_count_ignored(self):
        h = LogHistogram()
        h.observe(5.0, n=0)
        h.observe(5.0, n=-3)
        assert h.count == 0

    def test_to_dict_is_jsonable(self):
        h = LogHistogram.from_values([0.0, 1.0, 2.0, 4.0])
        doc = json.loads(json.dumps(h.to_dict()))
        assert doc["count"] == 4
        assert doc["buckets"][-1] == ["zero", 1]


class TestSharedPercentiles:
    """Satellite (a): the transport summary reports *these* numbers."""

    def test_heal_latency_percentiles_are_the_histogram(self):
        vals = [3.7, 1.1, 9.4, 2.2, 2.2, 15.0]
        s = TransportSummary(
            mode="async", latency="uniform", scheduler="latency", seed=0,
            heal_latencies=list(vals),
        )
        assert s.heal_latency_percentiles == (
            LogHistogram.from_values(vals).summary()
        )
        assert s.heal_latency_hist.count == len(vals)

    def test_lease_wait_percentiles_are_the_histogram(self):
        vals = [0.0, 0.5, 4.0]
        s = TransportSummary(
            mode="async", latency="u", scheduler="l", seed=0,
            lease_wait_times=list(vals),
        )
        assert s.lease_wait_percentiles == (
            LogHistogram.from_values(vals).summary()
        )


# ----------------------------------------------------------------------
# the metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        reg.counter("ev").inc()
        reg.counter("ev").inc(4)
        assert reg.counter("ev").value == 5
        with pytest.raises(ValueError):
            reg.counter("ev").inc(-1)

    def test_gauge_tracks_peak(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3)
        g.set(9)
        g.set(2)
        assert g.value == 2.0 and g.peak == 9.0

    def test_cross_type_name_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="another type"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="another type"):
            reg.histogram("x")

    def test_snapshot_deterministic_and_jsonable(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.counter("a.count").inc(1)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert json.dumps(snap) == json.dumps(reg.snapshot())
        assert snap["a.count"] == 1 and snap["b.count"] == 2
        assert snap["g"] == {"value": 7.0, "peak": 7.0}
        assert snap["h"]["count"] == 1
        # names come out sorted within each instrument kind
        assert list(snap)[:2] == ["a.count", "b.count"]

    def test_merge_folds_shards(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(3)
        b.counter("n").inc(4)
        a.gauge("g").set(10)
        b.gauge("g").set(2)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(3.0)
        a.merge(b)
        assert a.counter("n").value == 7
        assert a.gauge("g").value == 2.0 and a.gauge("g").peak == 10.0
        assert a.histogram("h").count == 2
        assert a.histogram("h").mean == 2.0

    def test_get_does_not_create(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        assert len(reg) == 0
        reg.counter("c")
        assert reg.get("c") is not None
        assert len(reg) == 1


# ----------------------------------------------------------------------
# the tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_lifecycle_and_args_merge(self):
        tr = Tracer()
        sid = tr.begin("heal:0", "heal", 1.0, (0, 0), args={"hid": 0})
        tr.end(sid, 3.5, args={"latency": 2.5})
        span = tr.spans[sid]
        assert span.t0 == 1.0 and span.t1 == 3.5
        assert span.args == {"hid": 0, "latency": 2.5}
        assert not tr.open_spans()
        tr.check_closed()  # no raise

    def test_double_close_raises(self):
        tr = Tracer()
        sid = tr.begin("s", "c", 0.0, (0, 0))
        tr.end(sid, 1.0)
        with pytest.raises(SpanError, match="already closed"):
            tr.end(sid, 2.0)

    def test_end_unknown_raises(self):
        with pytest.raises(SpanError, match="unknown span"):
            Tracer().end(99, 1.0)

    def test_close_before_open_raises(self):
        tr = Tracer()
        sid = tr.begin("s", "c", 5.0, (0, 0))
        with pytest.raises(SpanError, match="before opening"):
            tr.end(sid, 4.0)

    def test_unknown_parent_raises(self):
        with pytest.raises(SpanError, match="unknown parent"):
            Tracer().begin("layer-0", "layer", 0.0, (0, 0), parent=42)

    def test_check_closed_names_stuck_spans(self):
        tr = Tracer()
        tr.begin("heal:7", "heal", 0.0, (0, 7))
        with pytest.raises(SpanError, match="heal:7"):
            tr.check_closed()

    def test_span_children_index(self):
        tr = Tracer()
        root = tr.begin("heal:0", "heal", 0.0, (0, 0))
        kid_a = tr.begin("layer-0", "layer", 0.0, (0, 0), parent=root)
        kid_b = tr.begin("layer-1", "layer", 1.0, (0, 0), parent=root)
        for sid in (kid_a, kid_b, root):
            tr.end(sid, 2.0)
        tree = tr.span_children()
        assert tree[None] == [root]
        assert tree[root] == [kid_a, kid_b]

    def test_chrome_events_shape(self):
        tr = Tracer()
        tr.meta("thread_name", "heal 0", (0, 0))
        sid = tr.begin("heal:0", "heal", 1.5, (0, 0), args={"hid": 0})
        tr.instant("deliver:Msg", "msg", 2.0, (0, 0), args={"s": 1, "r": 2})
        tr.counter("in-flight", 2.0, {"heals": 1})
        tr.end(sid, 4.0)
        meta, b, inst, ctr, e = tr.chrome_events()
        assert meta == {"ph": "M", "pid": 0, "tid": 0, "name": "thread_name",
                        "args": {"name": "heal 0"}}
        assert b["ph"] == "B" and b["ts"] == 1500.0  # virtual ms -> us
        assert b["args"] == {"hid": 0, "sid": sid}
        assert inst["ph"] == "i" and inst["s"] == "t"
        assert ctr["ph"] == "C" and ctr["args"] == {"heals": 1}
        assert e["ph"] == "E" and e["ts"] == 4000.0
        assert e["args"]["sid"] == sid

    def test_parent_exported_in_args(self):
        tr = Tracer()
        root = tr.begin("heal:0", "heal", 0.0, (0, 0))
        tr.begin("layer-0", "layer", 0.0, (0, 0), parent=root)
        events = tr.chrome_events()
        assert events[1]["args"]["parent"] == root

    def test_export_chrome_is_deterministic_and_valid(self, tmp_path):
        def build():
            tr = Tracer()
            sid = tr.begin("heal:0", "heal", 0.0, (0, 3), args={"hid": 3})
            tr.instant("grant", "control", 0.5, CONTROL_TRACK)
            tr.end(sid, 2.0)
            return tr

        a, b = build(), build()
        assert a.export_chrome() == b.export_chrome()
        path = str(tmp_path / "t.json")
        a.export_chrome(path)
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(doc) == 3

    def test_export_jsonl(self, tmp_path):
        tr = Tracer()
        sid = tr.begin("s", "c", 0.0, (0, 0))
        tr.end(sid, 1.0)
        path = str(tmp_path / "t.jsonl")
        tr.export_jsonl(path)
        with open(path) as fh:
            lines = [json.loads(l) for l in fh]
        assert len(lines) == tr.n_records == 2
        assert lines[0]["ph"] == "B" and lines[1]["ph"] == "E"

    def test_null_tracer_is_inert(self):
        assert NO_TRACE.enabled is False
        assert NO_TRACE.begin("x", "c", 0.0, (0, 0)) == -1
        NO_TRACE.end(-1, 1.0)
        NO_TRACE.instant("x", "c", 0.0)
        NO_TRACE.counter("x", 0.0, {})
        NO_TRACE.meta("x", "y", (0, 0))
        NO_TRACE.check_closed()


class TestChromeValidation:
    def _doc(self, events):
        return {"traceEvents": events}

    def test_rejects_non_trace(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError, match="not a list"):
            validate_chrome_trace({"traceEvents": {}})

    def test_rejects_bad_events(self):
        bad = [
            ([42], "not an object"),
            ([{"ph": "Z", "pid": 0, "tid": 0, "ts": 0}], "unknown phase"),
            ([{"ph": "B", "pid": "x", "tid": 0, "ts": 0, "name": "s"}],
             "pid/tid"),
            ([{"ph": "B", "pid": 0, "tid": 0, "name": "s"}], "ts"),
            ([{"ph": "B", "pid": 0, "tid": 0, "ts": 0}], "name"),
            ([{"ph": "i", "pid": 0, "tid": 0, "ts": 0, "name": "s",
               "args": 7}], "args"),
        ]
        for events, match in bad:
            with pytest.raises(ValueError, match=match):
                validate_chrome_trace(self._doc(events))

    def test_rejects_unbalanced_stacks(self):
        with pytest.raises(ValueError, match="E without matching B"):
            validate_chrome_trace(
                self._doc([{"ph": "E", "pid": 0, "tid": 0, "ts": 1}])
            )
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace(
                self._doc(
                    [{"ph": "B", "pid": 0, "tid": 0, "ts": 0, "name": "s"}]
                )
            )
        with pytest.raises(ValueError, match="before its B"):
            validate_chrome_trace(
                self._doc([
                    {"ph": "B", "pid": 0, "tid": 0, "ts": 5, "name": "s"},
                    {"ph": "E", "pid": 0, "tid": 0, "ts": 4},
                ])
            )

    def test_accepts_interleaved_tracks(self):
        # B/E nesting is per (pid, tid): two tracks may interleave freely.
        n = validate_chrome_trace(self._doc([
            {"ph": "B", "pid": 0, "tid": 0, "ts": 0, "name": "a"},
            {"ph": "B", "pid": 0, "tid": 1, "ts": 1, "name": "b"},
            {"ph": "E", "pid": 0, "tid": 0, "ts": 2},
            {"ph": "E", "pid": 0, "tid": 1, "ts": 3},
        ]))
        assert n == 4


# ----------------------------------------------------------------------
# profiler and flight recorder
# ----------------------------------------------------------------------
class TestPhaseProfiler:
    def test_accumulates_per_phase(self):
        p = PhaseProfiler()
        p.add("deliver:Msg", 1000)
        p.add("deliver:Msg", 3000)
        p.add_virtual("deliver:Msg", 2.5)
        p.add_virtual("barrier", 1.0)  # virtual-only phase
        s = p.summary()
        assert s["deliver:Msg"]["calls"] == 2
        assert s["deliver:Msg"]["wall_s"] == pytest.approx(4e-6)
        assert s["deliver:Msg"]["us_per_call"] == pytest.approx(2.0)
        assert s["deliver:Msg"]["virtual"] == 2.5
        assert s["barrier"] == {"calls": 0, "wall_s": 0.0,
                                "us_per_call": 0.0, "virtual": 1.0}
        assert list(s) == sorted(s)
        assert len(p) == 2

    def test_phase_context_manager_times(self):
        p = PhaseProfiler()
        with p.phase("work"):
            sum(range(1000))
        s = p.summary()["work"]
        assert s["calls"] == 1 and s["wall_s"] > 0.0

    def test_top_ranks_by_wall(self):
        p = PhaseProfiler()
        p.add("cheap", 10)
        p.add("hot", 10_000_000)
        assert p.top(1)[0].startswith("hot:")


class TestFlightRecorder:
    def test_ring_evicts_oldest(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            assert rec.record("event", clock=float(i), eid=i) == i
        assert len(rec) == 4
        assert rec.recorded == 10
        assert rec.id_range == (6, 9)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_dump_format(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        rec.record("event", clock=1.0, eid=0, what="delete-4")
        rec.record("barrier", clock=2.0, events=1)
        path = rec.dump(str(tmp_path / "flight.jsonl"))
        with open(path) as fh:
            header, *rows = [json.loads(l) for l in fh]
        assert header["first_id"] == 0 and header["last_id"] == 1
        assert header["recorded_total"] == 2 and header["evicted"] == 0
        assert rows[0] == {"id": 0, "kind": "event", "clock": 1.0,
                           "eid": 0, "what": "delete-4"}
        assert rows[1]["kind"] == "barrier"

    def test_bisection_note(self):
        rec = FlightRecorder(capacity=2)
        assert "empty" in rec.bisection_note("/tmp/x")
        rec.record("e")
        rec.record("e")
        rec.record("e")
        note = rec.bisection_note("/tmp/x")
        assert "events 1..2" in note and "/tmp/x" in note


# ----------------------------------------------------------------------
# the obs= knob
# ----------------------------------------------------------------------
class TestObsSpec:
    def test_mode_strings(self):
        assert resolve_obs(None) is None
        assert resolve_obs("none") is None
        assert resolve_obs("metrics") == ObsSpec()
        assert resolve_obs("trace").trace is True
        assert resolve_obs("profile").profile is True
        audit = resolve_obs("audit")
        assert audit.audit and audit.recorder > 0
        full = resolve_obs("full")
        assert full.trace and full.profile and full.audit
        assert full.recorder == 4096
        spec = ObsSpec(profile=True)
        assert resolve_obs(spec) is spec
        assert set(OBS_MODES) == {"none", "metrics", "trace", "profile",
                                  "audit", "full"}

    def test_bad_inputs_raise(self):
        with pytest.raises(ValueError, match="unknown obs"):
            resolve_obs("verbose")
        with pytest.raises(ValueError, match="capacity"):
            ObsSpec(recorder=-1)
        with pytest.raises(ValueError, match="trace_path"):
            ObsSpec(trace_path="x.json")

    def test_state_builds_only_whats_asked(self):
        state = ObsState(ObsSpec())
        assert state.tracer is NO_TRACE
        assert state.metrics is not None
        assert state.profiler is None and state.recorder is None
        summary = state.finish()
        assert summary.trace_events == 0 and summary.tracer is None
        assert summary.profile == {}

    def test_finish_validates_open_spans(self):
        state = ObsState(ObsSpec(trace=True))
        state.tracer.begin("heal:0", "heal", 0.0, (0, 0))
        with pytest.raises(SpanError):
            state.finish()


# ----------------------------------------------------------------------
# harness wiring
# ----------------------------------------------------------------------
class TestHarnessObs:
    def test_trace_requires_async_transport(self):
        healer = ForgivingTreeHealer(_tree_graph(12, 1))
        for transport in (None, "sync"):
            with pytest.raises(ValueError, match="async transport"):
                run_campaign(
                    healer, RandomAdversary(seed=0), rounds=2,
                    transport=transport, obs="trace",
                )

    def test_metrics_without_transport(self):
        healer = ForgivingTreeHealer(_tree_graph(30, 2))
        res = run_campaign(
            healer, RandomAdversary(seed=2), rounds=5, obs="metrics"
        )
        m = res.obs.metrics
        assert m["campaign.rounds"] == 5
        assert m["campaign.deletes"] == 5
        assert m["campaign.alive"]["value"] == 25.0
        assert m["campaign.messages"]["count"] == 5
        assert res.obs.trace_events == 0

    def test_obs_none_leaves_result_bare(self):
        healer = ForgivingTreeHealer(_tree_graph(12, 1))
        res = run_campaign(healer, RandomAdversary(seed=0), rounds=2)
        assert res.obs is None

    def test_full_campaign_populates_everything(self):
        healer = ForgivingTreeHealer(_tree_graph(40, 5))
        adv = RandomChurnAdversary(p_insert=0.3, seed=5)
        res = run_churn_campaign(
            healer, adv, events=12, seed=5,
            transport=TransportSpec(mode="async", overlap="lease"),
            obs="full",
        )
        o = res.obs
        assert o.trace_events > 0 and o.tracer is not None
        assert o.trace_path is None  # no export path requested
        assert o.recorder_events > 0
        # the FT setup round (will distribution) is a kernel heal too
        assert o.metrics["kernel.heals"] == res.transport.events + 1
        assert o.metrics["mirror.events"] == res.transport.events
        assert o.metrics["campaign.rounds"] == 12
        assert o.metrics["kernel.delivered"] >= (
            res.transport.messages_delivered
        )
        # the profiler saw both the oracle and the mirror's hot phases
        assert o.profile["mirror:barrier"]["calls"] >= 1
        assert any(p.startswith("deliver:") for p in o.profile)
        assert any(p.startswith("oracle:") for p in o.profile)


# ----------------------------------------------------------------------
# the acceptance wall: trace <-> summary cross-check, byte determinism
# ----------------------------------------------------------------------
def _traced(tmp_path, tag, healer_cls=ForgivingTreeHealer, seed=7,
            latency="heavy-tail", scheduler="latency"):
    healer = healer_cls(_tree_graph(60, seed))
    adv = ScatterChurnAdversary(p_insert=0.3, seed=seed)
    trace_path = str(tmp_path / f"trace-{tag}.json")
    res = run_churn_campaign(
        healer, adv, events=30, seed=seed, measure_diameter=False,
        transport=TransportSpec(
            mode="async", overlap="lease", latency=latency,
            scheduler=scheduler, gap=0.1,
        ),
        obs=ObsSpec(trace=True, profile=True, recorder=2048,
                    trace_path=trace_path),
    )
    return res, trace_path


class TestTracedCampaignAcceptance:
    def test_trace_crosschecks_against_summary(self, tmp_path):
        res, trace_path = _traced(tmp_path, "a")
        t, o = res.transport, res.obs
        with open(trace_path) as fh:
            doc = json.load(fh)
        assert validate_chrome_trace(doc) == o.trace_events > 0

        # One heal span per mirrored event, and the latency histogram
        # rebuilt from the spans' close args matches the transport
        # summary's percentiles bit for bit.  (Feed both sides sorted:
        # the streaming mean is order-sensitive at the last ulp, and the
        # trace holds heals in open order, the summary in quiesce order.)
        spans = _heal_spans(o.tracer)
        assert len(spans) == t.events == 30
        assert all(s.t1 is not None for s in spans)
        from_trace = LogHistogram.from_values(
            sorted(s.args["heal_latency"] for s in spans)
        ).summary()
        from_summary = LogHistogram.from_values(
            sorted(t.heal_latencies)
        ).summary()
        assert from_trace == from_summary
        # ... and the summary's own percentile property is that histogram
        assert set(from_summary) == set(t.heal_latency_percentiles)

        # lease-mode control marks made it onto the control track
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "handoff:granted" in names
        assert any(n and n.startswith("ft:") for n in names)

    def test_same_seed_same_bytes(self, tmp_path):
        _, path_a = _traced(tmp_path, "a")
        _, path_b = _traced(tmp_path, "b")
        with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
            assert fa.read() == fb.read()


class TestTraceDeterminism:
    """Same seed => byte-identical trace, across the whole matrix."""

    @pytest.mark.parametrize("latency", sorted(LATENCY_CATALOG))
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULER_CATALOG))
    def test_matrix(self, latency, scheduler):
        for healer_cls in (ForgivingTreeHealer, ForgivingGraphHealer):
            texts = []
            for _ in range(2):
                healer = healer_cls(_tree_graph(20, 4))
                adv = RandomChurnAdversary(p_insert=0.3, seed=4)
                res = run_churn_campaign(
                    healer, adv, events=6, seed=4, measure_diameter=False,
                    transport=TransportSpec(
                        mode="async", latency=latency, scheduler=scheduler
                    ),
                    obs="trace",
                )
                texts.append(res.obs.tracer.export_chrome())
            assert texts[0] == texts[1], (healer_cls, latency, scheduler)


class TestSpanTreeFuzz:
    """Hypothesis: every traced campaign yields a well-formed span tree."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        p_insert=st.floats(min_value=0.0, max_value=0.6),
        latency=st.sampled_from(sorted(LATENCY_CATALOG)),
        scheduler=st.sampled_from(sorted(SCHEDULER_CATALOG)),
    )
    @settings(max_examples=12, deadline=None)
    def test_span_tree_well_formed(self, seed, p_insert, latency, scheduler):
        healer = ForgivingTreeHealer(_tree_graph(16, 1 + seed % 5))
        adv = RandomChurnAdversary(p_insert=p_insert, seed=seed)
        res = run_churn_campaign(
            healer, adv, events=5, seed=seed, measure_diameter=False,
            transport=TransportSpec(
                mode="async", latency=latency, scheduler=scheduler
            ),
            obs="trace",
        )
        tracer = res.obs.tracer
        spans = tracer.spans
        assert not tracer.open_spans()
        for span in spans.values():
            assert span.t1 is not None and span.t1 >= span.t0
            if span.parent is not None:
                parent = spans[span.parent]
                assert parent.t0 <= span.t0
            if span.cat == "layer":
                assert spans[span.parent].cat == "heal"
                assert span.pid == spans[span.parent].pid
                assert span.tid == spans[span.parent].tid
        validate_chrome_trace(json.loads(tracer.export_chrome()))


# ----------------------------------------------------------------------
# the flight recorder on a real failure
# ----------------------------------------------------------------------
class TestFlightRecorderOnFailure:
    def test_divergence_dumps_replayable_window(self, tmp_path):
        state = ObsState(
            ObsSpec(recorder=64, recorder_dir=str(tmp_path))
        )
        healer = ForgivingGraphHealer(_tree_graph(12, 3))
        mirror = TransportMirror(
            healer, resolve_transport("async", seed=1), obs=state
        )
        mirror.apply(healer.delete(4))
        # sabotage the expected image: the barrier must blow up and the
        # failure must carry the flight-recorder window
        mirror._expected.add((997, 998))
        with pytest.raises(TransportDivergence) as ei:
            mirror.barrier()
        msg = str(ei.value)
        assert "flight recorder: events 0.." in msg
        path = msg.rsplit("dumped to ", 1)[1].strip()
        assert path.startswith(str(tmp_path))
        assert os.path.exists(path)
        with open(path) as fh:
            header, *rows = [json.loads(l) for l in fh]
        assert header["first_id"] == 0
        assert rows[0]["kind"] == "event"
        assert rows[0]["what"] == "delete-4"  # the sabotaged event itself

    def test_dump_is_idempotent_across_nested_failures(self, tmp_path):
        state = ObsState(ObsSpec(recorder=64, recorder_dir=str(tmp_path)))
        healer = ForgivingGraphHealer(_tree_graph(12, 3))
        mirror = TransportMirror(
            healer, resolve_transport("async", seed=1), obs=state
        )
        mirror.apply(healer.delete(4))
        mirror._expected.add((997, 998))
        paths = set()
        for _ in range(2):
            with pytest.raises(TransportDivergence) as ei:
                mirror.barrier()
            paths.add(str(ei.value).rsplit("dumped to ", 1)[1].strip())
        assert len(paths) == 1  # one dump file, cited consistently


class TestSloDottedPaths:
    """SloSpec.resolve's dotted-path contract on hostile window records.

    The soak service feeds whatever the window assembler produced;
    specs must *skip* (return None) — never raise, never coerce — when
    the path dead-ends: a missing key anywhere along it, a non-dict
    intermediate (including lists), or a non-numeric leaf.
    """

    def _spec(self, metric):
        from repro.obs import SloSpec

        return SloSpec("probe", metric, "<=", 10.0)

    def test_flat_and_nested_hits(self):
        assert self._spec("a").resolve({"a": 3}) == 3
        assert self._spec("a.b.c").resolve({"a": {"b": {"c": 2.5}}}) == 2.5

    def test_missing_keys_skip(self):
        assert self._spec("a").resolve({}) is None
        assert self._spec("a.b").resolve({"a": {}}) is None
        # A missing *intermediate* key, with a sibling present.
        assert self._spec("a.b.c").resolve({"a": {"x": {"c": 1}}}) is None

    def test_list_intermediates_and_leaves_skip(self):
        # Lists are not traversable (no integer indexing in paths) ...
        assert self._spec("a.b").resolve({"a": [{"b": 1}]}) is None
        # ... and a list *leaf* is not a number.
        assert self._spec("a").resolve({"a": [1, 2, 3]}) is None

    def test_non_numeric_leaves_skip(self):
        for leaf in ("97", None, {"v": 1}, object()):
            assert self._spec("a").resolve({"a": leaf}) is None

    def test_bool_leaf_is_numeric(self):
        # bool is an int subclass; the resolver passes it through and
        # the comparison treats it as 0/1.
        assert self._spec("a").resolve({"a": True}) is True

    def test_empty_segment_never_matches(self):
        assert self._spec("a..b").resolve({"a": {"": {"b": 1}}}) == 1
        assert self._spec("a..b").resolve({"a": {"b": 1}}) is None

    def test_watchdog_skips_unresolvable_without_alerting(self):
        from repro.obs import SloSpec, SloWatchdog

        watchdog = SloWatchdog(
            [
                SloSpec("strs", "metric.str", "<=", 0.0),
                SloSpec("lists", "metric.list", "<=", 0.0),
                SloSpec("gone", "metric.gone.deeper", "<=", 0.0),
            ]
        )
        record = {
            "window": 0,
            "events": 100,
            "metric": {"str": "breach!", "list": [99, 99]},
        }
        assert watchdog.evaluate(record) == []
        assert not watchdog.breached
        assert watchdog.windows_evaluated == 1
