"""Tests for the soak subsystem and the streaming-telemetry stack.

The walls this PR must hold: engine snapshots restore to **bit-identical
future behavior** (serialize -> restore -> replay equals the unbroken
run, every branching x will-mode combination), per-window metrics
registries merge to exactly the whole-run registry, the workload
generator is a skippable pure function of its config, the snapshot
store's hash chain detects tampering and deduplicates identical states,
SLO breaches produce alert records plus a replayable flight-recorder
dump, the sampling tracer streams complete per-heal span trees under a
bounded span table, and a soak SIGKILLed mid-run resumes from its
checkpoint with differential cross-validation passing and the same
deterministic telemetry as an unbroken run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.baselines.forgiving import ForgivingTreeHealer
from repro.churn import (
    Delete,
    FlashCrowd,
    GeneratorChurnAdversary,
    GeneratorConfig,
    Insert,
    InsertWave,
    Outage,
    TraceGenerator,
)
from repro.core.errors import ReproError
from repro.core.flat_tree import FlatForgivingTree
from repro.core.forgiving_tree import WILL_REBUILD, WILL_SPLICE
from repro.graphs import generators
from repro.graphs.incremental import DynamicTreeMetrics
from repro.harness import run_churn_campaign
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    MetricsStreamer,
    PID_PROTOCOL,
    SamplingTracer,
    SloSpec,
    SloWatchdog,
    SpanError,
    FlightRecorder,
    Tracer,
    WindowedSink,
    default_slos,
    validate_trace_jsonl,
)
from repro.soak import (
    CheckpointError,
    SnapshotStore,
    SoakConfig,
    SoakService,
    decode_state,
    encode_state,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _drive(healer, events, seed=0, n0=60):
    """Apply a deterministic generator stream; return the HealReports.

    ``n0`` must match the healer's initial node count — the generator
    tracks its own alive set and only emits events over ids it created.
    """
    cfg = GeneratorConfig(n0=n0, seed=seed)
    gen = TraceGenerator(cfg)
    reports = []
    for _ in range(events):
        event = gen.next()
        if isinstance(event, Insert):
            reports.append(healer.insert(event.nid, event.attach_to))
        elif isinstance(event, InsertWave):
            reports.append(healer.insert_batch(event.joiners))
        else:
            reports.append(healer.delete(event.nid))
    return reports


class TestSnapshotRoundTrip:
    """serialize -> restore -> replay is bit-identical to the unbroken run."""

    @pytest.mark.parametrize("branching", [2, 3, 5])
    @pytest.mark.parametrize("will_mode", [WILL_SPLICE, WILL_REBUILD])
    def test_restore_replays_identically(self, branching, will_mode):
        cfg = GeneratorConfig(n0=60, seed=13)
        gen_a, gen_b = TraceGenerator(cfg), TraceGenerator(cfg)
        unbroken = FlatForgivingTree(
            gen_a.build_initial(), branching=branching, will_mode=will_mode
        )
        h_unbroken = ForgivingTreeHealer.from_engine(unbroken)
        _drive(h_unbroken, 80, seed=13)

        resumed_src = FlatForgivingTree(
            gen_b.build_initial(), branching=branching, will_mode=will_mode
        )
        h_resumed = ForgivingTreeHealer.from_engine(resumed_src)
        _drive(h_resumed, 80, seed=13)
        state = resumed_src.snapshot_state()
        restored = FlatForgivingTree.restore(state)
        h_restored = ForgivingTreeHealer.from_engine(restored)

        # Continue both with the same tail; reports must be bit-identical.
        cfg2 = GeneratorConfig(n0=60, seed=13)
        g1, g2 = TraceGenerator(cfg2), TraceGenerator(cfg2)
        g1.skip(80)
        g2.skip(80)
        for _ in range(60):
            e1, e2 = g1.next(), g2.next()
            assert e1 == e2
            if isinstance(e1, Insert):
                r1 = h_unbroken.insert(e1.nid, e1.attach_to)
                r2 = h_restored.insert(e1.nid, e1.attach_to)
            elif isinstance(e1, InsertWave):
                r1 = h_unbroken.insert_batch(e1.joiners)
                r2 = h_restored.insert_batch(e1.joiners)
            else:
                r1 = h_unbroken.delete(e1.nid)
                r2 = h_restored.delete(e1.nid)
            assert r1 == r2
        assert unbroken.adjacency() == restored.adjacency()
        assert unbroken.max_degree_increase() == restored.max_degree_increase()

    def test_object_oracle_agrees_after_restore(self):
        cfg = GeneratorConfig(n0=60, seed=3)
        gen = TraceGenerator(cfg)
        engine = FlatForgivingTree(gen.build_initial())
        healer = ForgivingTreeHealer.from_engine(engine)
        _drive(healer, 60, seed=3)
        restored = FlatForgivingTree.restore(engine.snapshot_state())
        oracle = FlatForgivingTree.restore(
            engine.snapshot_state()
        ).to_object_engine()
        h_flat = ForgivingTreeHealer.from_engine(restored)
        h_oracle = ForgivingTreeHealer.from_engine(oracle)
        g1, g2 = TraceGenerator(cfg), TraceGenerator(cfg)
        g1.skip(60)
        g2.skip(60)
        for _ in range(40):
            e = g1.next()
            assert e == g2.next()
            if isinstance(e, Insert):
                assert h_flat.insert(e.nid, e.attach_to) == h_oracle.insert(
                    e.nid, e.attach_to
                )
            elif isinstance(e, InsertWave):
                assert h_flat.insert_batch(e.joiners) == h_oracle.insert_batch(
                    e.joiners
                )
            else:
                assert h_flat.delete(e.nid) == h_oracle.delete(e.nid)
        assert restored.adjacency() == oracle.adjacency()

    def test_tracker_checkpoint_rebuilds_exactly(self):
        tree = generators.random_tree(80, seed=9)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        tracker = DynamicTreeMetrics({k: set(v) for k, v in tree.items()})
        cfg = GeneratorConfig(n0=80, seed=9)
        gen = TraceGenerator(cfg)
        for _ in range(50):
            event = gen.next()
            if isinstance(event, Insert):
                report = healer.insert(event.nid, event.attach_to)
            elif isinstance(event, InsertWave):
                report = healer.insert_batch(event.joiners)
            else:
                report = healer.delete(event.nid)
            tracker.apply_report(report)
        state = tracker.parent_state()
        rebuilt = DynamicTreeMetrics.from_parents(
            state["parents"], ids=state["ids"], chords=state["chords"]
        )
        assert rebuilt.diameter == tracker.diameter
        assert rebuilt.n_chords == tracker.n_chords
        rebuilt.check()


class TestCheckpointCodec:
    def test_round_trip_is_bit_exact(self):
        engine = FlatForgivingTree(generators.random_tree(40, seed=1))
        healer = ForgivingTreeHealer.from_engine(engine)
        _drive(healer, 30, seed=1, n0=40)
        state = engine.snapshot_state()
        blob = encode_state(state)
        assert encode_state(decode_state(blob)) == blob

    def test_rejects_garbage(self):
        with pytest.raises(CheckpointError):
            decode_state(b"not a snapshot")
        blob = encode_state(
            FlatForgivingTree(generators.random_tree(10, seed=2)).snapshot_state()
        )
        with pytest.raises(CheckpointError):
            decode_state(blob[:-4])  # truncated array bytes


class TestSnapshotStore:
    def _state(self, seed):
        engine = FlatForgivingTree(generators.random_tree(30, seed=seed))
        return engine.snapshot_state(), {"ids": [0], "parents": [-1],
                                         "chords": []}

    def test_chain_appends_and_verifies(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        e_state, t_state = self._state(1)
        a = store.append(100, e_state, t_state, meta={"d0": 5})
        b = store.append(200, e_state, t_state, meta={"d0": 5})
        assert b["prev"] == a["hash"]
        assert store.verify() == 2
        assert store.latest()["event_index"] == 200

    def test_identical_states_deduplicate(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        e_state, t_state = self._state(1)
        a = store.append(100, e_state, t_state)
        b = store.append(200, e_state, t_state)
        assert a["engine"] == b["engine"]
        objects = os.listdir(os.path.join(str(tmp_path), "objects"))
        assert len(objects) == 2  # one engine blob + one tracker blob

    def test_tamper_detected(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        e_state, t_state = self._state(1)
        entry = store.append(100, e_state, t_state)
        obj = os.path.join(str(tmp_path), "objects", entry["engine"])
        with open(obj, "r+b") as fh:
            fh.seek(32)
            fh.write(b"\xff")
        with pytest.raises(CheckpointError):
            store.verify()

    def test_manifest_edit_detected(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        e_state, t_state = self._state(1)
        store.append(100, e_state, t_state, meta={"d0": 5})
        lines = open(store.manifest_path).read().splitlines()
        doc = json.loads(lines[0])
        doc["event_index"] = 999  # rewrite history
        with open(store.manifest_path, "w") as fh:
            fh.write(json.dumps(doc, sort_keys=True) + "\n")
        with pytest.raises(CheckpointError):
            store.verify()

    def test_torn_tail_tolerated(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        e_state, t_state = self._state(1)
        store.append(100, e_state, t_state)
        with open(store.manifest_path, "a") as fh:
            fh.write('{"index": 1, "event_ind')  # SIGKILL mid-append
        assert len(store.entries()) == 1
        assert store.verify() == 1


class TestTraceGenerator:
    def test_pure_function_of_config(self):
        cfg = GeneratorConfig(n0=100, seed=5)
        a, b = TraceGenerator(cfg), TraceGenerator(cfg)
        assert [a.next() for _ in range(300)] == [b.next() for _ in range(300)]
        assert a.build_initial() == b.build_initial()

    def test_skip_equals_discard(self):
        cfg = GeneratorConfig(n0=100, seed=5)
        a, b = TraceGenerator(cfg), TraceGenerator(cfg)
        for _ in range(150):
            a.next()
        b.skip(150)
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]

    def test_acts_fire_and_stream_stays_valid(self):
        cfg = GeneratorConfig(
            n0=200,
            seed=8,
            acts=(
                Outage(at_event=100, fraction=0.4, rejoin_fraction=0.5),
                FlashCrowd(at_event=300, joiners=40, wave=8),
            ),
        )
        gen = TraceGenerator(cfg)
        alive = set(gen.build_initial())
        ever = set(alive)
        saw_wave = deletes_in_burst = 0
        for i in range(400):
            event = gen.next()
            if isinstance(event, Insert):
                assert event.nid not in ever and event.attach_to in alive
                alive.add(event.nid)
                ever.add(event.nid)
            elif isinstance(event, InsertWave):
                saw_wave += 1
                for nid, attach in event.joiners:
                    assert nid not in ever and attach in alive
                for nid, _ in event.joiners:
                    alive.add(nid)
                    ever.add(nid)
            else:
                assert event.nid in alive
                alive.discard(event.nid)
                if 100 <= i < 180:
                    deletes_in_burst += 1
            assert len(alive) >= 2
        assert saw_wave >= 5  # 40 joiners / wave 8
        assert deletes_in_burst >= 60  # the outage burst is consecutive

    def test_population_is_stationary(self):
        cfg = GeneratorConfig(n0=300, seed=4)
        gen = TraceGenerator(cfg)
        gen.skip(3000)
        assert 150 <= gen.alive_count <= 600

    def test_adversary_reset_rewinds_to_start_at(self):
        cfg = GeneratorConfig(n0=80, seed=2)
        gen = TraceGenerator(cfg)
        adversary = GeneratorChurnAdversary(gen, start_at=40)
        adversary.reset()
        probe = TraceGenerator(cfg)
        probe.skip(40)
        assert adversary.next_event(None) == probe.next()

    def test_config_validation(self):
        with pytest.raises(ReproError):
            GeneratorConfig(n0=1)
        with pytest.raises(ReproError):
            GeneratorConfig(lifetime_min=2.0, lifetime_max=1.0)
        with pytest.raises(ReproError):
            Outage(at_event=0, fraction=1.5)


class TestSinks:
    def test_jsonl_sink_rotates(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        sink = JsonlSink(path, max_bytes=600)
        for i in range(30):
            sink.emit("metrics", {"seq": i, "pad": "x" * 40})
        sink.close()
        assert sink.rotations >= 2
        assert all(os.path.exists(p) for p in sink.paths)
        total = sum(
            1 for p in sink.paths for _ in open(p)
        )
        assert total == 30
        for p in sink.paths:
            for line in open(p):
                assert json.loads(line)["kind"] == "metrics"

    def test_windowed_sink_aggregates_per_window(self):
        inner = MemorySink()
        win = WindowedSink(inner)
        for v in (1, 2, 3):
            win.emit("round", {"messages": v, "name": "ignored-not-numeric"})
        win.roll("w0")
        win.emit("round", {"messages": 10})
        win.roll("w1")
        summaries = inner.by_kind("window")
        assert len(summaries) == 2
        first = summaries[0]["fields"]["messages"]
        assert first == {"count": 3, "mean": 2.0, "min": 1, "max": 3}
        assert summaries[1]["fields"]["messages"]["max"] == 10
        assert summaries[1]["window"] == 1

    def test_metrics_streamer_deltas(self):
        registry = MetricsRegistry()
        sink = MemorySink()
        streamer = MetricsStreamer(registry, sink)
        registry.counter("events").inc(5)
        streamer.flush()
        registry.counter("events").inc(3)
        streamer.flush()
        records = sink.by_kind("metrics")
        assert records[0]["delta"]["events"] == 5
        assert records[1]["delta"]["events"] == 3
        assert records[1]["cumulative"]["events"] == 8


class TestWindowedMergeEqualsWholeRun:
    def test_merge_of_window_registries_is_whole_run(self):
        tree = generators.random_tree(120, seed=6)
        from repro.adversaries.churn import ScatterChurnAdversary
        from repro.harness.experiment import _stream_round

        whole = MetricsRegistry()
        merged = MetricsRegistry()
        window = MetricsRegistry()
        count = 0

        def on_round(record, healer):
            nonlocal window, count
            _stream_round(whole, record)
            _stream_round(window, record)
            count += 1
            if count % 25 == 0:
                merged.merge(window)
                window = MetricsRegistry()

        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        run_churn_campaign(
            healer,
            ScatterChurnAdversary(p_insert=0.35, seed=6),
            events=150,
            seed=6,
            keep_rounds=False,
            on_round=on_round,
        )
        merged.merge(window)  # the partial tail
        assert merged.snapshot() == whole.snapshot()


class TestSamplingTracer:
    def _heal(self, tracer, ts, layers=2):
        root = tracer.begin(f"heal:{ts}", "heal", ts, (PID_PROTOCOL, int(ts)))
        for d in range(layers):
            sid = tracer.begin(
                f"layer-{d}", "layer", ts + 0.1 * d,
                (PID_PROTOCOL, int(ts)), parent=root,
            )
            tracer.instant(
                "deliver", "msg", ts + 0.1 * d, (PID_PROTOCOL, int(ts))
            )
            tracer.end(sid, ts + 0.1 * d + 0.05)
        tracer.end(root, ts + 1.0)
        return root

    def test_head_sampling_keeps_complete_heals(self):
        sink = MemorySink()
        tracer = SamplingTracer(sink, sample_every=3)
        for t in range(9):
            self._heal(tracer, float(t))
        assert tracer.roots_seen == 9
        assert tracer.roots_kept == 3
        records = sink.by_kind("trace")
        # Each kept heal: 3 B + 3 E + 2 instants = 8 records, complete.
        assert len(records) == 24
        text = "\n".join(json.dumps(r) for r in records)
        assert validate_trace_jsonl(text) == 24

    def test_span_table_is_purged(self):
        tracer = SamplingTracer(MemorySink(), sample_every=2)
        for t in range(50):
            self._heal(tracer, float(t))
        assert len(tracer.spans) == 0  # every closed heal was purged
        tracer.check_closed()

    def test_force_keep_overrides_sampling(self):
        sink = MemorySink()
        tracer = SamplingTracer(sink, sample_every=1000)
        self._heal(tracer, 0.0)  # root 1: sampled (first)
        self._heal(tracer, 1.0)  # dropped
        tracer.force_keep(2)
        self._heal(tracer, 2.0)
        self._heal(tracer, 3.0)
        self._heal(tracer, 4.0)  # dropped again
        assert tracer.roots_kept == 3
        names = [r["name"] for r in sink.by_kind("trace") if r["ph"] == "B"
                 and r["cat"] == "heal"]
        assert names == ["heal:0.0", "heal:2.0", "heal:3.0"]

    def test_control_plane_streams_through(self):
        sink = MemorySink()
        tracer = SamplingTracer(sink, sample_every=1000)
        tracer.instant("lease:grant", "lease", 1.0)
        assert sink.by_kind("trace")[-1]["name"] == "lease:grant"

    def test_bounded_memory_cap_names_the_knobs(self):
        tracer = Tracer(max_spans=4)
        for i in range(4):
            tracer.begin(f"s{i}", "x", float(i), (PID_PROTOCOL, 0))
        with pytest.raises(SpanError) as exc:
            tracer.begin("s5", "x", 5.0, (PID_PROTOCOL, 0))
        message = str(exc.value)
        assert "SamplingTracer" in message and "sample_every" in message


class TestSloWatchdog:
    def _window(self, **over):
        record = {
            "window": 0, "first_event": 0, "last_event": 99, "events": 100,
            "peak_degree_increase": 2, "peak_stretch": 1.5,
            "messages": {"p99": 12.0},
            "op": {"events_per_sec": 5000.0},
        }
        record.update(over)
        return record

    def test_quiet_window_raises_nothing(self):
        watchdog = SloWatchdog(default_slos())
        assert watchdog.evaluate(self._window()) == []
        assert not watchdog.breached

    def test_breach_emits_alert_and_dumps_recorder(self, tmp_path):
        recorder = FlightRecorder(16)
        for i in range(10):
            recorder.record("event", clock=float(i), alive=100 - i)
        watchdog = SloWatchdog(
            default_slos(max_stretch=1.0),
            recorder=recorder,
            dump_dir=str(tmp_path),
        )
        alerts = watchdog.evaluate(self._window(window=3))
        assert [a.slo for a in alerts] == ["stretch-certificate"]
        assert alerts[0].observed == 1.5 and alerts[0].window == 3
        assert watchdog.dump_path and os.path.exists(watchdog.dump_path)
        header = json.loads(open(watchdog.dump_path).readline())
        assert header["first_id"] == 0 and header["last_id"] == 9
        # Second breach does not re-dump (the first window is the story).
        first_dump = watchdog.dump_path
        watchdog.evaluate(self._window(window=4))
        assert watchdog.dump_path == first_dump

    def test_breach_arms_sampling_tracer(self):
        tracer = SamplingTracer(MemorySink(), sample_every=10_000)
        watchdog = SloWatchdog(
            default_slos(max_stretch=1.0), tracer=tracer, keep_on_breach=5
        )
        watchdog.evaluate(self._window())
        assert tracer._forced == 5

    def test_absent_metrics_and_small_windows_skip(self):
        watchdog = SloWatchdog(default_slos(max_stretch=1.0))
        # No peak_stretch key at all -> spec skipped, no breach.
        assert watchdog.evaluate({"window": 0, "events": 100}) == []
        # Tiny window -> min_events specs skipped.
        spec = SloSpec("p99", "messages.p99", "<=", 1.0, min_events=50)
        watchdog2 = SloWatchdog([spec])
        assert watchdog2.evaluate(self._window(events=3)) == []

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            SloSpec("bad", "x", "!=", 1.0)


class TestSoakService:
    def test_fresh_run_holds_budgets_and_checkpoints(self, tmp_path):
        config = SoakConfig(
            out_dir=str(tmp_path / "soak"),
            n0=150,
            events=1200,
            window=300,
            seed=17,
            sample_every=50,
            outages=((500, 0.3, 0.5),),
        )
        summary = SoakService(config).run()
        det = summary["deterministic"]
        assert det["events_total"] == 1200
        assert det["windows"] == 4
        assert det["peak_degree_increase"] <= 3
        assert det["alerts"] == 0
        store = SnapshotStore(str(tmp_path / "soak" / "checkpoints"))
        assert store.verify() == det["checkpoints"] == 4
        text = open(str(tmp_path / "soak" / "telemetry.jsonl")).read()
        assert validate_trace_jsonl(text) > 0
        kinds = {json.loads(line)["kind"] for line in text.splitlines()}
        assert {"window", "metrics", "checkpoint", "trace", "summary"} <= kinds

    def test_resume_continues_deterministically(self, tmp_path):
        base = dict(n0=120, window=250, seed=23, sample_every=0, crossval=100)
        whole_dir = str(tmp_path / "whole")
        split_dir = str(tmp_path / "split")
        SoakService(
            SoakConfig(out_dir=whole_dir, events=1000, **base)
        ).run()
        # Same campaign in two segments: stop at 500, then resume to 1000.
        SoakService(SoakConfig(out_dir=split_dir, events=500, **base)).run()
        config_path = os.path.join(split_dir, "config.json")
        doc = json.load(open(config_path))
        doc["events"] = 1000
        json.dump(doc, open(config_path, "w"))
        service = SoakService(SoakConfig.load(config_path))
        summary = service.run()
        assert service.crossval_result["ok"]
        assert service.crossval_result["events"] == 100
        whole = json.load(open(os.path.join(whole_dir, "summary.json")))
        for key in (
            "events_total", "windows", "peak_degree_increase",
            "peak_diameter", "peak_stretch", "final_alive", "d0",
        ):
            assert summary["deterministic"][key] == \
                whole["deterministic"][key], key

    def test_breach_scenario_produces_replayable_alert(self, tmp_path):
        config = SoakConfig(
            out_dir=str(tmp_path / "soak"),
            n0=100,
            events=600,
            window=200,
            seed=29,
            sample_every=100,
            slo_max_stretch=1.01,
        )
        summary = SoakService(config).run()
        det = summary["deterministic"]
        assert det["slo_breached"] and det["alerts"] >= 1
        assert det["recorder_dump"] and os.path.exists(det["recorder_dump"])
        alerts = [
            json.loads(line)
            for line in open(str(tmp_path / "soak" / "telemetry.jsonl"))
            if json.loads(line)["kind"] == "alert"
        ]
        first = alerts[0]
        assert first["slo"] == "stretch-certificate"
        assert first["last_event"] > first["first_event"] >= 0
        header = json.loads(open(det["recorder_dump"]).readline())
        assert header["recorded_total"] > 0


class TestKillResumeCli:
    def test_sigkill_then_resume_cross_validates(self, tmp_path):
        out = str(tmp_path / "soak")
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        cmd = [
            sys.executable, "-m", "repro.soak.run", "--out", out,
            "--n0", "200", "--events", "100000", "--window", "500",
            "--seed", "41", "--sample-every", "0", "--crossval", "150",
            "--quiet",
        ]
        proc = subprocess.Popen(cmd, env=env, cwd=REPO,
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE)
        manifest = os.path.join(out, "checkpoints", "manifest.jsonl")
        deadline = time.time() + 60
        while time.time() < deadline:
            if os.path.exists(manifest) and os.path.getsize(manifest) > 0:
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("no checkpoint appeared within 60s")
        proc.send_signal(signal.SIGKILL)
        proc.wait()

        config_path = os.path.join(out, "config.json")
        doc = json.load(open(config_path))
        done = len(open(manifest).read().splitlines())
        doc["events"] = min(doc["events"], (done + 2) * 500)
        json.dump(doc, open(config_path, "w"))
        result = subprocess.run(
            [sys.executable, "-m", "repro.soak.run", "--out", out, "--resume"],
            env=env, cwd=REPO, capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "cross-validation" in result.stdout
        summary = json.load(open(os.path.join(out, "summary.json")))
        assert summary["deterministic"]["crossval"]["ok"]
        assert summary["deterministic"]["events_total"] == doc["events"]
        store = SnapshotStore(os.path.join(out, "checkpoints"))
        assert store.verify() >= done


class TestValidatorClis:
    def test_validate_trace_jsonl_mode(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        tracer = SamplingTracer(sink, sample_every=1)
        sid = tracer.begin("heal:0", "heal", 0.0, (PID_PROTOCOL, 0))
        tracer.end(sid, 1.0)
        sink.close()
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        ok = subprocess.run(
            [sys.executable, "benchmarks/validate_trace.py", "--jsonl",
             str(tmp_path / "t.jsonl")],
            env=env, cwd=REPO, capture_output=True, text=True,
        )
        assert ok.returncode == 0 and "OK" in ok.stdout
        with open(str(tmp_path / "bad.jsonl"), "w") as fh:
            fh.write('{"ph": "E", "ts": 1, "pid": 0, "tid": 0, "sid": 9, '
                     '"args": null}\n')
        bad = subprocess.run(
            [sys.executable, "benchmarks/validate_trace.py", "--jsonl",
             str(tmp_path / "bad.jsonl")],
            env=env, cwd=REPO, capture_output=True, text=True,
        )
        assert bad.returncode == 1 and "INVALID" in bad.stderr

    def test_inspect_recorder_renders_dump(self, tmp_path):
        recorder = FlightRecorder(8)
        for i in range(12):
            recorder.record("event", clock=float(i), alive=50 - i)
        path = recorder.dump(str(tmp_path / "dump.jsonl"))
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        result = subprocess.run(
            [sys.executable, "benchmarks/inspect_recorder.py", path,
             "--tail", "3"],
            env=env, cwd=REPO, capture_output=True, text=True,
        )
        assert result.returncode == 0
        assert "events 4..11" in result.stdout
        assert "replay window" in result.stdout


class TestObsSummaryDeterminism:
    def test_deterministic_half_is_byte_identical(self):
        from repro.adversaries.churn import ScatterChurnAdversary
        from repro.obs import ObsSpec
        from repro.simnet import TransportSpec

        def once():
            tree = generators.random_tree(80, seed=31)
            healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
            result = run_churn_campaign(
                healer,
                ScatterChurnAdversary(p_insert=0.3, seed=31),
                events=40,
                seed=31,
                transport=TransportSpec(mode="async"),
                obs=ObsSpec(trace=True, profile=True, recorder=512),
            )
            return result.obs
        a, b = once(), once()
        assert json.dumps(a.deterministic(), sort_keys=True) == \
            json.dumps(b.deterministic(), sort_keys=True)
        # The timing half exists but is excluded from the contract.
        assert set(a.deterministic()) == {
            "metrics", "profile", "trace_events", "recorder_events"
        }
        assert a.timing.keys() == a.profile.keys()
