"""Object-vs-flat parity wall for the struct-of-arrays core.

The flat core (:class:`repro.FlatForgivingTree`) is a re-implementation of
the sequential engine on preallocated parallel arrays; the object engine
(:class:`repro.ForgivingTree`) stays the reference oracle.  The contract
is *structural identity*, not mere equivalence: over any churn script the
two engines must produce bit-identical heal reports (edge deltas, the
full ordered event log, per-node message tallies), the same image graph,
the same wills, and the same degree accounting.  Everything here drives
both engines with the same drawn events and asserts that contract.

Also covered: the free-list id recycling that keeps the arena bounded,
``from_parents`` O(n) construction, the healer's ``core=`` knob and fast
paths (``fast_stats`` / ``sample_alive``), the harness's streaming
``keep_rounds=False`` mode, and the benchmark table's numeric coercion.
"""

import importlib.util
import os
import random

import pytest

from repro import FlatForgivingTree, ForgivingTree
from repro.adversaries import RandomChurnAdversary
from repro.baselines import ENGINE_CORES, ForgivingTreeHealer
from repro.core import invariants
from repro.core.errors import (
    NodeNotFoundError,
    NotATreeError,
    SimulationOverError,
)
from repro.graphs import generators
from repro.graphs.adjacency import is_connected
from repro.graphs.incremental import DynamicTreeMetrics
from repro.harness import run_churn_campaign


def _load_bench_conftest():
    path = os.path.join(
        os.path.dirname(__file__), os.pardir, "benchmarks", "conftest.py"
    )
    spec = importlib.util.spec_from_file_location("_bench_conftest", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def report_key(rep):
    """A heal report reduced to comparable structure."""
    return (
        rep.deleted,
        rep.was_internal,
        sorted(rep.edges_added),
        sorted(rep.edges_removed),
        rep.events,
        rep.messages_per_node,
        rep.inserted,
        rep.attached_to,
        rep.inserted_batch,
    )


def assert_twins(obj, flat):
    """The two engines are structurally identical right now."""
    assert set(flat.alive) == obj.alive
    assert flat.adjacency() == obj.adjacency()
    assert flat.max_degree_increase() == obj.max_degree_increase()
    for nid in obj.alive:
        assert flat.degree(nid) == obj.degree(nid)
        assert flat.degree_increase(nid) == obj.degree_increase(nid)
        assert flat.state_of(nid) == obj.state_of(nid)
        assert flat.heir_of(nid) == obj.heir_of(nid)
        w_obj, w_flat = obj.will_of(nid), flat.will_of(nid)
        assert w_flat.heir == w_obj.heir
        assert w_flat.stand_ins == w_obj.stand_ins
        assert w_flat.internal_specs() == w_obj.internal_specs()
    assert flat.render() == obj.render()


def play_twins(n0, events, branching, will_mode, seed, check_every=1,
               p_insert=0.40, p_batch=0.12, drain=False):
    """Drive both engines with one shared drawn event stream."""
    tree = generators.random_tree(n0, seed=seed)
    obj = ForgivingTree(tree, branching=branching, will_mode=will_mode,
                        strict=True)
    flat = FlatForgivingTree(tree, branching=branching, will_mode=will_mode,
                             strict=True)
    rng = random.Random(seed * 31 + 7)
    next_id = max(tree) + 1
    for t in range(events):
        alive = sorted(obj.alive)
        if not alive:
            break
        roll = rng.random()
        if roll < p_batch and len(alive) > 2:
            wave = []
            for _ in range(rng.randint(2, 4)):
                wave.append((next_id, rng.choice(alive)))
                next_id += 1
            r_obj = obj.insert_batch(wave)
            r_flat = flat.insert_batch(wave)
        elif roll < p_batch + p_insert:
            attach = rng.choice(alive)
            r_obj = obj.insert(next_id, attach)
            r_flat = flat.insert(next_id, attach)
            next_id += 1
        else:
            victim = rng.choice(alive)
            r_obj = obj.delete(victim)
            r_flat = flat.delete(victim)
        assert report_key(r_flat) == report_key(r_obj), f"diverged at event {t}"
        if t % check_every == 0:
            assert_twins(obj, flat)
            invariants.check_full(obj)
            invariants.check_full(flat)
    if drain:
        while obj.alive:
            victim = rng.choice(sorted(obj.alive))
            r_obj = obj.delete(victim)
            r_flat = flat.delete(victim)
            assert report_key(r_flat) == report_key(r_obj)
            if obj.alive:
                assert_twins(obj, flat)
    return obj, flat


class TestStructuralIdentity:
    """Bit-identical behaviour over seeded mixed churn campaigns."""

    @pytest.mark.parametrize("branching", [2, 3, 5])
    @pytest.mark.parametrize("will_mode", ["splice", "rebuild"])
    def test_mixed_churn_parity(self, branching, will_mode):
        play_twins(24, 70, branching, will_mode, seed=branching * 100 + 1,
                   check_every=4)

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_endgame_drain_parity(self, seed):
        # Churn down to the empty network: the late game exercises root
        # re-rooting, ready heirs and donor exhaustion.
        play_twins(16, 40, 2, "splice", seed=seed, check_every=5, drain=True)

    def test_deeper_campaign_parity(self):
        play_twins(60, 150, 2, "splice", seed=42, check_every=15)

    def test_delete_only_parity(self):
        play_twins(30, 60, 2, "rebuild", seed=5, check_every=6,
                   p_insert=0.0, p_batch=0.0)

    def test_empty_engine_raises(self):
        flat = FlatForgivingTree({0: set()})
        flat.delete(0)
        with pytest.raises(SimulationOverError):
            flat.delete(0)


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

#: One drawn churn step: (kind, pick) — ``pick`` indexes the alive set
#: (victim or attachment point) modulo its size; kind < 2 inserts.
fuzz_steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4),
              st.integers(min_value=0, max_value=10**6)),
    min_size=1,
    max_size=40,
)


class TestFuzzedInterleavings:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50), script=fuzz_steps)
    def test_any_interleaving_is_identical(self, seed, script):
        tree = generators.random_tree(10, seed=seed)
        obj = ForgivingTree(tree, strict=True)
        flat = FlatForgivingTree(tree, strict=True)
        next_id = max(tree) + 1
        for kind, pick in script:
            alive = sorted(obj.alive)
            if not alive:
                break
            target = alive[pick % len(alive)]
            if kind < 2:
                r_obj = obj.insert(next_id, target)
                r_flat = flat.insert(next_id, target)
                next_id += 1
            else:
                r_obj = obj.delete(target)
                r_flat = flat.delete(target)
            assert report_key(r_flat) == report_key(r_obj)
            if obj.alive:
                assert set(flat.alive) == obj.alive
                assert flat.adjacency() == obj.adjacency()
                assert flat.max_degree_increase() == obj.max_degree_increase()
        if obj.alive:
            assert_twins(obj, flat)
            invariants.check_full(flat)


class TestFreeListRecycling:
    """Slot reuse keeps the arena bounded; identities never leak."""

    def test_arena_stays_bounded_under_steady_churn(self):
        tree = generators.random_tree(12, seed=3)
        flat = FlatForgivingTree(tree, strict=True)
        rng = random.Random(3)
        next_id = max(tree) + 1
        flat.delete(rng.choice(sorted(flat.alive)))
        capacity = len(flat._c.kind)
        for _ in range(120):
            flat.insert(next_id, rng.choice(sorted(flat.alive)))
            next_id += 1
            flat.delete(rng.choice(sorted(flat.alive)))
        # 120 insert+delete cycles recycle slots instead of growing the
        # arena: a leak would allocate ~2 slots per cycle.
        assert len(flat._c.kind) <= capacity + 16
        invariants.check_full(flat)

    def test_helper_ids_are_never_reused(self):
        tree = generators.random_tree(14, seed=9)
        flat = FlatForgivingTree(tree, strict=True)
        rng = random.Random(9)
        next_id = max(tree) + 1
        seen = set()
        for _ in range(30):
            alive = sorted(flat.alive)
            if len(alive) <= 2:
                break
            if rng.random() < 0.4:
                flat.insert(next_id, rng.choice(alive))
                next_id += 1
            else:
                flat.delete(rng.choice(alive))
            hids = [h.hid for h in flat.virtual_tree().helpers()]
            assert len(hids) == len(set(hids))
            # A freed helper identity never comes back: new helpers
            # always take fresh (higher) ids.
            fresh = set(hids) - seen
            if seen and fresh:
                assert min(fresh) > max(seen)
            seen |= set(hids)

    def test_slots_freed_in_one_event_not_reused_within_it(self):
        # Deleting an internal node both frees slots (the dead node's
        # will) and allocates slots (the new helpers).  The limbo
        # quarantine makes freed slots invisible until the next event —
        # otherwise slot-int equality could alias two distinct
        # within-event participants.  Observable contract: the event is
        # structurally identical to the object engine's, which uses
        # object identity and cannot alias.  An aliasing bug would make
        # the two engines diverge, so parity over internal deletions
        # (exercised heavily above) is the real test; here we pin the
        # mechanism directly.
        tree = generators.random_tree(20, seed=4)
        flat = FlatForgivingTree(tree, strict=True)
        internal = max(flat.alive, key=flat.degree)
        before = set(flat._c._free)
        flat.delete(internal)
        # Slots freed by this event sit in limbo, not on the free list
        # (the event may also have *consumed* free slots for new helpers,
        # but nothing freed this event may reappear there)...
        assert set(flat._c._free) <= before
        limbo = set(flat._c._limbo)
        assert limbo and not limbo & set(flat._c._free)
        # ...until the next event begins, which recycles them.
        survivor = sorted(flat.alive)[0]
        flat.insert(max(tree) + 1, survivor)
        assert limbo <= set(flat._c._free) | set(flat._c._limbo) | {
            flat._c.real(max(tree) + 1)
        }


class TestAliveView:
    def test_set_algebra_without_copies(self):
        tree = generators.random_tree(9, seed=1)
        flat = FlatForgivingTree(tree)
        view = flat.alive
        assert view == set(tree)
        assert len(view) == 9
        assert 0 in view and 99 not in view
        assert view & {0, 1, 99} == {0, 1}
        assert {0, 1} <= view
        assert sorted(view | {99}) == sorted(set(tree) | {99})
        flat.delete(3)
        assert 3 not in view  # live view, not a snapshot
        assert len(view) == 8

    def test_sample_alive_is_uniform_and_seeded(self):
        tree = generators.random_tree(50, seed=2)
        flat = FlatForgivingTree(tree)
        draws = [flat.sample_alive(random.Random(7)) for _ in range(5)]
        assert len(set(draws)) == 1  # same seed, same draw
        rng = random.Random(0)
        samples = {flat.sample_alive(rng) for _ in range(400)}
        assert samples <= set(flat.alive)
        assert len(samples) > 25  # actually spreads over the alive set


class TestFromParents:
    def _parents_of(self, tree, root=0):
        parents = [0] * len(tree)
        parents[root] = -1
        stack, seen = [root], {root}
        while stack:
            u = stack.pop()
            for v in tree[u]:
                if v not in seen:
                    seen.add(v)
                    parents[v] = u
                    stack.append(v)
        return parents

    def test_matches_adjacency_construction(self):
        tree = generators.random_tree(40, seed=6)
        parents = self._parents_of(tree)
        a = FlatForgivingTree(tree, root=0)
        b = FlatForgivingTree.from_parents(parents)
        assert b.adjacency() == a.adjacency()
        assert b.render() == a.render()
        b.check()

    def test_churn_after_from_parents_stays_identical(self):
        tree = generators.random_tree(25, seed=8)
        obj = ForgivingTree(tree, root=0, strict=True)
        flat = FlatForgivingTree.from_parents(self._parents_of(tree),
                                              strict=True)
        rng = random.Random(8)
        next_id = len(tree)
        for _ in range(50):
            alive = sorted(obj.alive)
            if len(alive) <= 1:
                break
            if rng.random() < 0.4:
                attach = rng.choice(alive)
                r_obj = obj.insert(next_id, attach)
                r_flat = flat.insert(next_id, attach)
                next_id += 1
            else:
                victim = rng.choice(alive)
                r_obj = obj.delete(victim)
                r_flat = flat.delete(victim)
            assert report_key(r_flat) == report_key(r_obj)
        assert_twins(obj, flat)

    def test_rejects_malformed_parent_arrays(self):
        with pytest.raises(NotATreeError):
            FlatForgivingTree.from_parents([])
        with pytest.raises(NotATreeError):
            FlatForgivingTree.from_parents([-1, -1, 0])  # two roots
        with pytest.raises(NotATreeError):
            FlatForgivingTree.from_parents([1, 0])  # no root
        with pytest.raises(NotATreeError):
            FlatForgivingTree.from_parents([-1, 2, 1])  # 1<->2 cycle
        with pytest.raises(NodeNotFoundError):
            FlatForgivingTree.from_parents([-1, 7])  # parent out of range

    def test_metrics_from_parents_matches_adjacency(self):
        tree = generators.random_tree(60, seed=10)
        parents = self._parents_of(tree)
        a = DynamicTreeMetrics(tree)
        b = DynamicTreeMetrics.from_parents(parents)
        assert b.root == a.root
        assert b.diameter == a.diameter
        assert all(b.height_of(v) == a.height_of(v) for v in tree)
        b.check()

    def test_metrics_from_parents_rejects_malformed(self):
        with pytest.raises(NotATreeError):
            DynamicTreeMetrics.from_parents([-1, -1])
        with pytest.raises(NotATreeError):
            DynamicTreeMetrics.from_parents([1, 0])
        with pytest.raises(NotATreeError):
            DynamicTreeMetrics.from_parents([-1, 2, 1])
        with pytest.raises(NodeNotFoundError):
            DynamicTreeMetrics.from_parents([-1, 9])


class TestHealerCoreKnob:
    def test_engine_catalog(self):
        assert set(ENGINE_CORES) == {"flat", "object"}
        assert ENGINE_CORES["flat"] is FlatForgivingTree
        assert ENGINE_CORES["object"] is ForgivingTree

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError):
            ForgivingTreeHealer({0: {1}, 1: {0}}, core="numpy")

    def test_cores_heal_identically_behind_the_healer(self):
        tree = generators.random_tree(30, seed=12)
        healers = {
            core: ForgivingTreeHealer(
                {k: set(v) for k, v in tree.items()}, core=core
            )
            for core in ("flat", "object")
        }
        rng = random.Random(12)
        next_id = len(tree)
        for _ in range(40):
            alive = sorted(healers["flat"].alive)
            if len(alive) <= 1:
                break
            if rng.random() < 0.45:
                attach = rng.choice(alive)
                reports = [h.insert(next_id, attach)
                           for h in healers.values()]
                next_id += 1
            else:
                victim = rng.choice(alive)
                reports = [h.delete(victim) for h in healers.values()]
            assert report_key(reports[0]) == report_key(reports[1])
            assert healers["flat"].graph() == healers["object"].graph()

    def test_fast_stats_agrees_with_the_graph(self):
        tree = generators.random_tree(40, seed=13)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        rng = random.Random(13)
        for _ in range(15):
            healer.delete(rng.choice(sorted(healer.alive)))
            connected, alive = healer.fast_stats()
            graph = healer.graph()
            assert connected is is_connected(graph)
            assert alive == len(graph) == len(healer.alive)

    def test_healer_sample_alive_draws_members(self):
        tree = generators.random_tree(20, seed=14)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        rng = random.Random(14)
        assert all(healer.sample_alive(rng) in healer.alive
                   for _ in range(50))


class TestHarnessStreaming:
    def _campaign(self, keep_rounds, fast_sample=True):
        tree = generators.random_tree(120, seed=21)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        adversary = RandomChurnAdversary(p_insert=0.5, seed=21,
                                         fast_sample=fast_sample)
        return run_churn_campaign(healer, adversary, events=80,
                                  metrics="auto", keep_rounds=keep_rounds)

    def test_fold_equals_rounds(self):
        kept, streamed = self._campaign(True), self._campaign(False)
        assert kept.rounds and not streamed.rounds
        assert streamed.series("alive") == []
        for prop in ("peak_degree_increase", "peak_diameter",
                     "stayed_connected", "peak_messages_per_node",
                     "n_inserts", "n_deletes", "final_alive"):
            assert getattr(streamed, prop) == getattr(kept, prop), prop

    def test_fast_sample_stream_matches_classic_distribution_shape(self):
        # fast_sample draws from the same alive set with the same seed
        # discipline; it is a different (still uniform) stream, so only
        # structural outcomes are compared, not the event sequence.
        classic = self._campaign(True, fast_sample=False)
        fast = self._campaign(True, fast_sample=True)
        for result in (classic, fast):
            assert result.stayed_connected
            assert result.peak_degree_increase <= 3
            assert result.n_inserts + result.n_deletes == 80

    def test_metrics_none_with_fast_stats_skips_nothing_observable(self):
        tree = generators.random_tree(60, seed=22)

        def run(metrics):
            healer = ForgivingTreeHealer(
                {k: set(v) for k, v in tree.items()}
            )
            adversary = RandomChurnAdversary(p_insert=0.5, seed=22)
            return run_churn_campaign(healer, adversary, events=40,
                                      metrics=metrics)

        fast, full = run("none"), run("auto")
        assert fast.stayed_connected == full.stayed_connected
        assert fast.final_alive == full.final_alive
        assert fast.peak_degree_increase == full.peak_degree_increase
        assert all(r.diameter is None for r in fast.rounds)


class TestBenchTableCoercion:
    def test_coerce_restores_numbers(self):
        bench = _load_bench_conftest()
        assert bench._coerce("126") == 126
        assert isinstance(bench._coerce("126"), int)
        assert bench._coerce("5.2x") == 5.2
        assert bench._coerce("97%") == 97
        assert bench._coerce("99.5%") == 99.5
        assert bench._coerce("forgiving-tree") == "forgiving-tree"
        assert bench._coerce("inf") == "inf"  # non-finite stays a string
        assert bench._coerce("nanx") == "nanx"
        assert bench._coerce(True) is True
        assert bench._coerce(3.5) == 3.5

    def test_table_payload_is_numeric(self):
        bench = _load_bench_conftest()
        payload = bench.table(["a", "b", "c"], [["12", "3.4x", "ok"]])
        assert payload["rows"] == [[12, 3.4, "ok"]]
