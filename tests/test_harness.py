"""Tests for the experiment harness, bounds and report rendering."""

import pytest

from repro.adversaries import MaxDegreeAdversary, RandomAdversary
from repro.baselines import ForgivingTreeHealer, LineHealer
from repro.graphs import generators
from repro.harness import bounds, duel, report, run_campaign


class TestRunCampaign:
    def test_records_every_round(self):
        healer = ForgivingTreeHealer(generators.star(10))
        result = run_campaign(healer, RandomAdversary(1), rounds=5)
        assert len(result.rounds) == 5
        assert result.healer_name == "forgiving-tree"
        assert result.adversary_name == "random"
        assert result.n0 == 11

    def test_runs_to_one_survivor_by_default(self):
        healer = ForgivingTreeHealer(generators.path(6))
        result = run_campaign(healer, RandomAdversary(2))
        assert result.rounds[-1].alive == 1

    def test_stop_fraction(self):
        healer = ForgivingTreeHealer(generators.path(10))
        result = run_campaign(healer, RandomAdversary(3), stop_fraction=0.5)
        assert result.rounds[-1].alive >= 5

    def test_series_extraction(self):
        healer = ForgivingTreeHealer(generators.star(6))
        result = run_campaign(healer, MaxDegreeAdversary(), rounds=3)
        assert len(result.series("max_degree_increase")) == 3

    def test_observer_called(self):
        seen = []
        healer = ForgivingTreeHealer(generators.star(5))
        run_campaign(
            healer,
            RandomAdversary(0),
            rounds=2,
            on_round=lambda rec, h: seen.append(rec.round),
        )
        assert seen == [1, 2]

    def test_exact_diameter_mode(self):
        healer = ForgivingTreeHealer(generators.path(8))
        result = run_campaign(healer, RandomAdversary(5), rounds=3, exact_diameter=True)
        assert all(r.diameter is not None for r in result.rounds if r.connected)

    def test_duel(self):
        tree = generators.star(12)
        results = duel(
            tree,
            [ForgivingTreeHealer, LineHealer],
            lambda: MaxDegreeAdversary(),
            rounds=6,
        )
        assert set(results) == {"forgiving-tree", "line"}


class TestBounds:
    def test_degree_bound(self):
        assert bounds.thm1_degree_bound() == 3
        assert bounds.thm1_degree_bound(4) == 5

    def test_diameter_bound_monotone(self):
        assert bounds.thm1_diameter_bound(4, 64) >= bounds.thm1_diameter_bound(4, 8)
        assert bounds.thm1_diameter_bound(1, 1) >= 1

    def test_thm2_predicate(self):
        assert bounds.thm2_lower_bound_holds(3, 3, 100)
        assert not bounds.thm2_lower_bound_holds(3, 0.5, 10_000)

    def test_section42_needs_alpha3(self):
        with pytest.raises(ValueError):
            bounds.section42_stretch_bound(2, 100)

    def test_setup_bound(self):
        assert bounds.setup_messages_bound(1024) == pytest.approx(40.0)


class TestReport:
    def test_table(self):
        text = report.format_table(
            ["name", "value"], [["a", 1], ["bb", 2.5]]
        )
        assert "name" in text and "bb" in text and "2.50" in text
        assert len(text.splitlines()) == 4

    def test_series(self):
        text = report.format_series("diam", list(range(40)))
        assert text.startswith("diam: 0 1 2")

    def test_sparkline(self):
        assert len(report.sparkline([1, 2, 3])) == 3
        assert report.sparkline([5, 5]) == "▁▁"
        assert report.sparkline([]) == ""

    def test_banner(self):
        assert "EXP" in report.banner("EXP")
