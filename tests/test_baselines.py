"""Tests for the baseline healers and the intro's failure-mode claims."""

import pytest

from repro.adversaries import (
    DiameterGreedyAdversary,
    SurrogateKillerAdversary,
)
from repro.baselines import (
    BinaryTreeHealer,
    DegreeCappedSurrogateHealer,
    ForgivingTreeHealer,
    LineHealer,
    NoRepairHealer,
    SurrogateHealer,
    healer_catalog,
)
from repro.core.errors import NodeNotFoundError, SimulationOverError
from repro.graphs import generators, metrics
from repro.graphs.adjacency import is_connected
from repro.harness import run_campaign


class TestSurrogate:
    def test_absorbs_all_edges(self):
        healer = SurrogateHealer(generators.star(5))
        healer.delete(0)
        g = healer.graph()
        assert len(g[1]) == 4  # smallest-id neighbor got everything

    def test_theta_n_degree_blowup(self):
        """Intro claim: an adversary drives some degree up by Θ(n)."""
        n = 40
        healer = SurrogateHealer(generators.star(n))
        adv = SurrogateKillerAdversary()
        result = run_campaign(healer, adv, rounds=n // 2, measure_diameter=False)
        assert result.peak_degree_increase >= n - 3

    def test_forgiving_tree_immune_to_same_attack(self):
        n = 40
        healer = ForgivingTreeHealer(generators.star(n))
        adv = SurrogateKillerAdversary()
        result = run_campaign(healer, adv, rounds=n // 2, measure_diameter=False)
        assert result.peak_degree_increase <= 3


class TestLine:
    def test_line_repair_shape(self):
        healer = LineHealer(generators.star(4))
        healer.delete(0)
        assert healer.graph() == {1: {2}, 2: {1, 3}, 3: {2, 4}, 4: {3}}

    def test_degree_increase_stays_small(self):
        # Each heal adds at most 2 edges per neighbor; accumulation over
        # rounds stays far below the surrogate's Θ(n).
        healer = LineHealer(generators.random_tree(40, 1))
        adv = SurrogateKillerAdversary()
        result = run_campaign(healer, adv, rounds=20, measure_diameter=False)
        assert result.peak_degree_increase <= 6

    def test_diameter_blowup_vs_forgiving(self):
        """Intro claim: Θ(n) diameter for line healing; FT stays O(D log ∆)."""
        tree = generators.broom(4, 24)
        adv = lambda: DiameterGreedyAdversary()
        line = run_campaign(LineHealer(tree), adv(), rounds=14)
        ft = run_campaign(ForgivingTreeHealer(tree), adv(), rounds=14)
        assert line.peak_diameter > ft.peak_diameter

    def test_line_diameter_grows_linearly_on_star(self):
        n = 30
        healer = LineHealer(generators.star(n))
        healer.delete(0)
        assert metrics.diameter_exact(healer.graph()) == n - 1


class TestBinaryTree:
    def test_local_repair_is_logarithmic(self):
        n = 32
        healer = BinaryTreeHealer(generators.star(n))
        healer.delete(0)
        d = metrics.diameter_exact(healer.graph())
        assert d <= 2 * 6  # 2*log2(32) ballpark

    def test_still_connected_under_attack(self):
        healer = BinaryTreeHealer(generators.random_tree(40, 3))
        adv = DiameterGreedyAdversary()
        result = run_campaign(healer, adv, rounds=20)
        assert result.stayed_connected


class TestNoRepair:
    def test_disconnects(self):
        healer = NoRepairHealer(generators.star(5))
        healer.delete(0)
        assert not is_connected(healer.graph())


class TestCappedSurrogate:
    def test_caps_degree(self):
        healer = DegreeCappedSurrogateHealer(generators.star(30), cap=3)
        healer.delete(0)
        assert healer.max_degree_increase() <= 4

    def test_validates_cap(self):
        with pytest.raises(ValueError):
            DegreeCappedSurrogateHealer(generators.star(4), cap=1)


class TestForgivingTreeHealer:
    def test_keeps_non_tree_edges(self):
        g = generators.cycle(6)
        healer = ForgivingTreeHealer(g)
        assert healer.graph() == g  # tree overlay + the extra cycle edge

    def test_non_tree_edges_die_with_endpoints(self):
        g = generators.cycle(6)
        healer = ForgivingTreeHealer(g)
        extra = next(iter(healer._extra))
        healer.delete(extra[0])
        assert extra not in healer._extra

    def test_general_graph_campaign(self):
        g = generators.random_connected_gnp(40, 0.1, seed=6)
        healer = ForgivingTreeHealer(g)
        adv = SurrogateKillerAdversary()
        result = run_campaign(healer, adv, rounds=35, measure_diameter=False)
        assert result.peak_degree_increase <= 3

    def test_rejects_disconnected(self):
        from repro.core.errors import DisconnectedGraphError

        with pytest.raises(DisconnectedGraphError):
            ForgivingTreeHealer({0: {1}, 1: {0}, 2: set()})


class TestHealerInterface:
    def test_catalog_complete(self):
        catalog = healer_catalog()
        assert set(catalog) >= {
            "forgiving-tree",
            "surrogate",
            "line",
            "binary-tree",
            "no-repair",
        }

    def test_delete_unknown_raises(self):
        healer = LineHealer(generators.star(3))
        with pytest.raises(NodeNotFoundError):
            healer.delete(99)

    def test_delete_after_exhaustion(self):
        healer = LineHealer({0: {1}, 1: {0}})
        healer.delete(0)
        healer.delete(1)
        with pytest.raises(SimulationOverError):
            healer.delete(1)
