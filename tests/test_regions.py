"""Test wall for the region-lease subsystem (overlapping-heal handoff).

What the ISSUE demands pinned: deterministic, seed-stable conflict
resolution (priority = virtual time of the triggering event, tie-broken
by event id); Hypothesis fuzz over grant/release interleavings (no
deadlock, deterministic winner under a fixed seed); every escalation
path reached *and cross-validated* (the campaign barriers inside assert
node-for-node image parity); and seq-vs-async convergence campaigns
with ``overlap="lease"`` across all latency models and schedulers for
both the Forgiving Tree and the Forgiving Graph.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversaries import (
    CHURN_ADVERSARY_CATALOG,
    OverlapChurnAdversary,
    RandomChurnAdversary,
    ScatterChurnAdversary,
    region_ball,
)
from repro.baselines.forgiving import ForgivingTreeHealer
from repro.core.errors import NodeNotFoundError, ProtocolError
from repro.distributed import DistributedForgivingTree
from repro.fgraph import DistributedForgivingGraph
from repro.fgraph.distributed import FGDeleted
from repro.fgraph.healer import ForgivingGraphHealer
from repro.graphs import generators
from repro.harness import run_churn_campaign
from repro.regions import (
    DELEGATED,
    ESCALATION_REASONS,
    HandoffError,
    HandoffLedger,
    LeaseError,
    LeaseManager,
)
from repro.simnet import (
    LATENCY_CATALOG,
    SCHEDULER_CATALOG,
    AsyncNetwork,
    TransportSpec,
)

HEALERS = ((ForgivingTreeHealer, "ft"), (ForgivingGraphHealer, "fg"))


def _tree_graph(n, seed):
    return {k: set(v) for k, v in generators.random_tree(n, seed).items()}


# ----------------------------------------------------------------------
# the lease table
# ----------------------------------------------------------------------
class TestLeaseManager:
    def test_disjoint_requests_grant_immediately(self):
        mgr = LeaseManager()
        assert mgr.acquire(0, {1, 2}, (0.0, 0), coordinator=1).granted
        assert mgr.acquire(1, {3, 4}, (0.5, 1), coordinator=3).granted
        assert mgr.holders() == [0, 1]
        assert mgr.waiters() == []
        assert mgr.held_nodes() == {1, 2, 3, 4}
        mgr.check()

    def test_conflict_defers_and_release_resumes(self):
        mgr = LeaseManager()
        mgr.acquire(0, {1, 2}, (0.0, 0), coordinator=1)
        decision = mgr.acquire(1, {2, 3}, (1.0, 1))
        assert not decision.granted
        assert decision.blockers == (0,)
        assert decision.delegated_to == 1  # the blocking heal's coordinator
        assert mgr.blockers_of(1) == (0,)
        mgr.check()
        assert mgr.release(0) == [1]
        assert mgr.holders() == [1]
        assert mgr.waiters() == []
        mgr.check()

    def test_priority_order_is_deterministic(self):
        """Conflicting waiters resume in (time, event id) order no matter
        the release order of their disjoint blockers."""
        mgr = LeaseManager()
        mgr.acquire(0, {1}, (0.0, 0))
        mgr.acquire(1, {2}, (0.5, 1))
        # two waiters on different holders, plus one on both
        assert not mgr.acquire(2, {1, 9}, (1.0, 2)).granted
        assert not mgr.acquire(3, {2, 8}, (1.5, 3)).granted
        assert not mgr.acquire(4, {9, 8}, (2.0, 4)).granted  # waits on 2 and 3
        assert mgr.blockers_of(4) == (2, 3)
        assert mgr.release(1) == [3]
        assert mgr.release(0) == [2]
        assert mgr.release(3) == []  # 4 still blocked by 2
        assert mgr.release(2) == [4]
        mgr.check()

    def test_tie_broken_by_event_id(self):
        """Equal virtual times (gap=0 campaigns) resolve by event id."""
        mgr = LeaseManager()
        mgr.acquire(0, {1, 2}, (0.0, 0))
        assert not mgr.acquire(2, {2}, (1.0, 2)).granted
        assert not mgr.acquire(1, {1}, (1.0, 1)).granted  # same time, lower id
        assert mgr.waiters() == [1, 2]  # priority order, not arrival order
        assert mgr.release(0) == [1, 2]

    def test_out_of_order_acquire_never_grants_conflicting_leases(self):
        """Monotone priorities are the transport's invariant, not the
        table's: even a direct API user acquiring out of priority order
        must never end with two conflicting holders."""
        mgr = LeaseManager()
        mgr.acquire(0, {1}, (0.0, 0))
        assert not mgr.acquire(5, {1, 2}, (1.0, 5)).granted
        # earlier priority arrives *after* the waiter it conflicts with:
        # the waiter never captured it as a blocker
        assert mgr.acquire(3, {2, 9}, (1.0, 3)).granted
        granted = mgr.release(0)  # 5's stored blockers empty out...
        assert granted == []  # ...but 3 still holds node 2: refilled, not granted
        assert mgr.blockers_of(5) == (3,)
        mgr.check()
        assert mgr.release(3) == [5]

    def test_later_waiter_never_jumps_earlier_conflicting_one(self):
        mgr = LeaseManager()
        mgr.acquire(0, {1}, (0.0, 0))
        assert not mgr.acquire(1, {1, 2}, (1.0, 1)).granted
        # event 2 is disjoint from the *holder* but overlaps waiter 1:
        # granting it would reorder conflicting events vs the oracle.
        decision = mgr.acquire(2, {2, 3}, (2.0, 2))
        assert not decision.granted
        assert decision.blockers == (1,)
        granted = mgr.release(0)
        assert granted == [1]  # 2 stays queued behind 1
        assert mgr.waiters() == [2]
        assert mgr.release(1) == [2]

    def test_stats_and_errors(self):
        mgr = LeaseManager()
        mgr.acquire(0, {1}, (0.0, 0))
        mgr.acquire(1, {1}, (1.0, 1))
        assert mgr.stats.requests == 2
        assert mgr.stats.immediate_grants == 1
        assert mgr.stats.deferred == 1
        assert mgr.stats.peak_waiting == 1
        with pytest.raises(LeaseError):
            mgr.acquire(0, {5}, (2.0, 5))  # id already active
        with pytest.raises(LeaseError):
            mgr.acquire(1, {5}, (2.0, 5))  # queued id already active
        with pytest.raises(LeaseError):
            mgr.release(1)  # not held (still waiting)
        with pytest.raises(LeaseError):
            mgr.set_coordinator(1, 7)
        with pytest.raises(LeaseError):
            mgr.blockers_of(99)
        with pytest.raises(LeaseError):
            mgr.coordinator_of(99)

    def test_wait_chain_depth(self):
        mgr = LeaseManager()
        mgr.acquire(0, {1}, (0.0, 0))
        mgr.acquire(1, {1, 2}, (1.0, 1))
        mgr.acquire(2, {2, 3}, (2.0, 2))
        mgr.acquire(3, {3, 4}, (3.0, 3))
        assert mgr.wait_chain_depth() == 3  # 1 <- 2 <- 3 convoy
        mgr.acquire(4, {9}, (4.0, 4))
        assert mgr.wait_chain_depth() == 3  # disjoint grant doesn't deepen

    def test_find_cycle_detects_corrupted_state(self):
        """A waits-for cycle is structurally unreachable; corrupt the
        stored blocker edges directly and the audit must catch it."""
        mgr = LeaseManager()
        mgr.acquire(0, {1}, (0.0, 0))
        mgr.acquire(1, {1, 2}, (1.0, 1))
        mgr.acquire(2, {2, 3}, (2.0, 2))
        assert mgr.find_cycle() is None
        mgr.check()
        # forge a back edge: waiter 1 suddenly "waits" on waiter 2
        next(w for w in mgr._waiting if w.eid == 1).blockers.add(2)
        cycle = mgr.find_cycle()
        assert cycle is not None and set(cycle) >= {1, 2}
        with pytest.raises(LeaseError):
            mgr.check()

    def test_withdraw_runs_the_grant_cascade(self):
        """Withdrawing a waiter that others (transitively) waited on must
        grant them, not strand them queued with empty blocker sets."""
        mgr = LeaseManager()
        mgr.acquire(0, {1}, (0.0, 0))
        assert not mgr.acquire(1, {1, 2}, (1.0, 1)).granted
        assert not mgr.acquire(2, {2}, (2.0, 2)).granted  # waits only on 1
        assert mgr.withdraw(1) == [2]  # 2 is granted, not stranded
        assert mgr.holders() == [0, 2]
        assert mgr.waiters() == []
        mgr.check()
        with pytest.raises(LeaseError):
            mgr.withdraw(1)  # no longer waiting

    def test_clear_resets_everything(self):
        mgr = LeaseManager()
        mgr.acquire(0, {1}, (0.0, 0))
        mgr.acquire(1, {1}, (1.0, 1))
        mgr.clear()
        assert mgr.holders() == [] and mgr.waiters() == []
        assert mgr.held_nodes() == set()
        mgr.check()

    def test_coordinators_view(self):
        mgr = LeaseManager()
        mgr.acquire(0, {1, 2}, (0.0, 0), coordinator=2)
        assert not mgr.acquire(1, {2, 3}, (1.0, 1)).granted
        assert mgr.coordinator_of(0) == 2
        assert mgr.coordinator_of(1) == 2  # delegated to 0's coordinator
        assert mgr.coordinators() == {2}


# ----------------------------------------------------------------------
# Hypothesis: fuzz over grant/release interleavings
# ----------------------------------------------------------------------
class TestLeaseFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        footprints=st.lists(
            st.frozensets(st.integers(min_value=0, max_value=12), min_size=1, max_size=4),
            min_size=1,
            max_size=14,
        ),
        release_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_no_deadlock_any_interleaving(self, footprints, release_seed):
        """Acquire everything in order, release holders in an arbitrary
        (seeded) order: every event is granted exactly once, conflicting
        grants never coexist, and the table drains empty — no deadlock,
        no lost waiter, invariants audited at every step."""
        import random as _random

        rng = _random.Random(release_seed)
        mgr = LeaseManager()
        granted = set()
        for eid, fp in enumerate(footprints):
            if mgr.acquire(eid, fp, (float(eid), eid)).granted:
                granted.add(eid)
            mgr.check()
        while mgr.holders():
            victim = rng.choice(mgr.holders())
            for resumed in mgr.release(victim):
                assert resumed not in granted
                granted.add(resumed)
            mgr.check()
            # pairwise disjointness of everything currently held
            held = [mgr._held[eid] for eid in mgr.holders()]
            for i, fa in enumerate(held):
                for fb in held[i + 1:]:
                    assert not (fa & fb)
        assert granted == set(range(len(footprints)))
        assert mgr.waiters() == []

    @settings(max_examples=30, deadline=None)
    @given(
        footprints=st.lists(
            st.frozensets(st.integers(min_value=0, max_value=8), min_size=1, max_size=3),
            min_size=2,
            max_size=10,
        ),
    )
    def test_deterministic_winner(self, footprints):
        """Two identical acquire/release traces make identical decisions
        (the seed-stability the transport's determinism rests on)."""
        def trace():
            mgr = LeaseManager()
            log = []
            for eid, fp in enumerate(footprints):
                d = mgr.acquire(eid, fp, (float(eid), eid))
                log.append((eid, d.granted, d.blockers, d.delegated_to))
            while mgr.holders():
                head = mgr.holders()[0]
                log.append(("release", head, tuple(mgr.release(head))))
            return log

        assert trace() == trace()


# ----------------------------------------------------------------------
# the handoff state machine
# ----------------------------------------------------------------------
class TestHandoffLedger:
    def test_granted_walk(self):
        led = HandoffLedger()
        led.request(0, 0.0)
        led.granted(0, 0.0)
        led.injected(0, 0.1)
        led.released(0, 2.0)
        assert led[0].state == "released"
        assert led[0].lease_wait == 0.0
        led.check_drained()

    def test_delegated_walk_measures_wait(self):
        led = HandoffLedger()
        led.request(7, 1.0)
        led.delegated(7, 1.0, to=3)
        assert led.peak_deferred == 1
        led.resumed(7, 4.5)
        led.injected(7, 4.5)
        led.released(7, 9.0)
        assert led.lease_waits == 1
        assert led.wait_times == [3.5]
        assert led[7].delegated_to == 3

    def test_escalated_walks(self):
        led = HandoffLedger()
        led.request(0, 0.0)
        led.escalated(0, 0.0, "coordinator-death")  # pre-acquire
        led.injected(0, 1.0)
        led.released(0, 2.0)
        led.request(1, 3.0)
        led.delegated(1, 3.0, to=5)
        led.escalated(1, 4.0, "wait-chain")  # mid-wait
        led.injected(1, 5.0)
        led.released(1, 6.0)
        assert led.escalations == {"coordinator-death": 1, "wait-chain": 1}
        assert led.total_escalations == 2
        # escalated waits count as escalations, not lease waits: the
        # three categories partition the mirrored events
        assert led.wait_times == [] and led.lease_waits == 0
        led.check_drained()

    def test_illegal_transitions_raise(self):
        led = HandoffLedger()
        led.request(0, 0.0)
        with pytest.raises(HandoffError):
            led.injected(0, 0.0)  # must be granted/resumed/escalated first
        led.granted(0, 0.0)
        with pytest.raises(HandoffError):
            led.resumed(0, 0.0)  # granted events never waited
        with pytest.raises(HandoffError):
            led.request(0, 0.0)  # duplicate
        with pytest.raises(HandoffError):
            led.escalated(0, 0.0, "sunspots")  # unknown reason
        led.injected(0, 0.0)
        with pytest.raises(HandoffError):
            led.check_drained()  # still in flight
        assert set(ESCALATION_REASONS) == {
            "coordinator-death", "lease-cycle", "wait-chain", "crash",
        }


# ----------------------------------------------------------------------
# driver surface: coordinators and the mid-heal guard
# ----------------------------------------------------------------------
class TestHealCoordinators:
    def test_ft_coordinator_is_smallest_notified_neighbor(self):
        dist = DistributedForgivingTree({0: [1, 2], 1: [0], 2: [0]})
        assert dist.heal_coordinator(0) in dist.alive
        assert dist.heal_coordinator(0) == 1
        with pytest.raises(NodeNotFoundError):
            dist.heal_coordinator(99)

    def test_fg_coordinator_matches_fanout_election(self):
        g = _tree_graph(12, 3)
        dist = DistributedForgivingGraph(g)
        for nid in list(sorted(dist.alive))[:4]:
            coord = dist.heal_coordinator(nid)
            claims = sorted(dist.network.nodes[nid].neighbor_claims())
            assert coord == (claims[0] if claims else None)
        with pytest.raises(NodeNotFoundError):
            dist.heal_coordinator(99)

    def test_fg_lone_node_has_no_coordinator(self):
        dist = DistributedForgivingGraph({0: {1}, 1: {0}})
        dist.delete(0)
        assert dist.heal_coordinator(1) is None

    def test_fg_coordinator_busy_guard_is_loud(self):
        """A second FGDeleted naming a mid-gather coordinator must fail
        loudly instead of silently clobbering the report tally."""
        dist = DistributedForgivingGraph(_tree_graph(8, 1))
        nid = dist.heal_coordinator(min(dist.alive))
        node = dist.network.nodes[nid]
        node._victim = 99  # simulate an in-progress coordination
        node._await_reports = 2
        with pytest.raises(ProtocolError, match="lease"):
            node.handle(
                FGDeleted(
                    sender=98, recipient=nid, victim=98,
                    coordinator=nid, n_reports=1,
                )
            )


# ----------------------------------------------------------------------
# kernel primitives the lease path added
# ----------------------------------------------------------------------
class TestKernelLeasePrimitives:
    def test_drain_heals_is_targeted(self):
        net = AsyncNetwork(latency="uniform", seed=4)
        dist = DistributedForgivingTree(generators.random_tree(40, 2), network=net)
        h1 = net.open_heal(label="delete-a")
        dist.inject_delete(0)
        net.close_injection()
        h2 = net.open_heal(label="delete-b")
        dist.inject_delete(39)
        net.close_injection()
        net.drain_heals([h1])
        assert net.heal_pending(h1) == 0
        net.quiesce()
        assert net.heal_pending(h2) == 0

    def test_lease_wait_backdating(self):
        net = AsyncNetwork(latency="constant", seed=0)
        DistributedForgivingTree({0: [1], 1: [0]}, network=net)
        net.run_until(5.0)
        hid = net.open_heal(label="x", requested_at=2.0)
        net.close_injection()
        stats = net.heal_stats(hid)
        assert stats.requested_at == 2.0
        assert stats.lease_wait == 3.0
        hid2 = net.open_heal(label="y")
        net.close_injection()
        assert net.heal_stats(hid2).lease_wait == 0.0

    def test_log_control_entries_are_causal_events(self):
        net = AsyncNetwork(latency="constant", seed=0, record_log=True)
        DistributedForgivingTree({0: [1], 1: [0]}, network=net)
        before = len(net.event_log)
        net.log_control("lease-grant", 7)
        entry = net.event_log[-1]
        assert entry.kind == "control" and entry.ref == 7
        # The typed record still round-trips to the historical tuple.
        assert entry.to_tuple() == (
            round(net.clock, 9), 7, -1, -1, -1, "lease-grant"
        )
        assert len(net.event_log) == before + 1
        quiet = AsyncNetwork()
        quiet.log_control("lease-grant", 1)  # record_log off: no-op
        assert quiet.event_log == []


# ----------------------------------------------------------------------
# lease campaigns: convergence, determinism, escalations (the tentpole)
# ----------------------------------------------------------------------
class TestLeaseCampaigns:
    """Every barrier inside cross-validates the distributed image
    node-for-node against the sequential oracle (TransportDivergence on
    mismatch), which is the ISSUE's parity bar; these tests additionally
    pin that the lease path was actually *exercised*."""

    @pytest.mark.parametrize(
        "factory,latency,scheduler",
        [
            (f, lat, sched)
            for (f, _n) in HEALERS
            for lat, sched in zip(
                sorted(LATENCY_CATALOG) * 2,
                itertools.cycle(sorted(SCHEDULER_CATALOG)),
            )
        ],
    )
    def test_lease_campaign_converges(self, factory, latency, scheduler):
        healer = factory(_tree_graph(70, 21))
        res = run_churn_campaign(
            healer,
            RandomChurnAdversary(p_insert=0.3, seed=6),
            events=45,
            seed=6,
            transport=TransportSpec(
                mode="async",
                overlap="lease",
                latency=latency,
                scheduler=scheduler,
                gap=0.08,
                barrier_every=8,
            ),
        )
        t = res.transport
        assert t.events == 45
        assert t.overlap == "lease"
        assert t.conflict_barriers == 0  # conflicts defer, they never barrier
        assert t.lease_grants + t.lease_waits + t.total_escalations == 45

    @pytest.mark.parametrize("factory,name", HEALERS)
    def test_overlap_heavy_campaign_waits_and_converges(self, factory, name):
        healer = factory(_tree_graph(150, 11))
        res = run_churn_campaign(
            healer,
            OverlapChurnAdversary(seed=3, p_coordinator=0.0),
            events=60,
            seed=3,
            transport=TransportSpec(
                mode="async", overlap="lease", gap=0.05, barrier_every=10
            ),
        )
        t = res.transport
        assert t.lease_waits > 0, name  # intersecting footprints interleaved
        assert t.peak_deferred >= 1
        assert all(w >= 0 for w in t.lease_wait_times)
        assert t.lease_wait_percentiles["max"] >= t.lease_wait_percentiles["p50"]

    @pytest.mark.parametrize("factory,name", HEALERS)
    def test_coordinator_death_escalation_reached(self, factory, name):
        healer = factory(_tree_graph(150, 7))
        res = run_churn_campaign(
            healer,
            OverlapChurnAdversary(seed=5, p_coordinator=0.5, p_overlap=0.8),
            events=70,
            seed=5,
            transport=TransportSpec(
                mode="async", overlap="lease", gap=0.04, barrier_every=0
            ),
        )
        t = res.transport
        assert t.escalations.get("coordinator-death", 0) > 0, name
        assert t.events == 70  # ... and the campaign still cross-validated

    @pytest.mark.parametrize("factory,name", HEALERS)
    def test_wait_chain_escalation_reached(self, factory, name):
        healer = factory(_tree_graph(120, 9))
        res = run_churn_campaign(
            healer,
            OverlapChurnAdversary(seed=2, p_coordinator=0.0, p_overlap=0.9),
            events=60,
            seed=2,
            transport=TransportSpec(
                mode="async",
                overlap="lease",
                gap=0.0,  # no time flows between events: convoys build
                barrier_every=0,
                max_wait_chain=2,
            ),
        )
        t = res.transport
        assert t.escalations.get("wait-chain", 0) > 0, name

    def test_summary_is_deterministic(self):
        def run():
            healer = ForgivingGraphHealer(_tree_graph(90, 13))
            res = run_churn_campaign(
                healer,
                OverlapChurnAdversary(seed=4),
                events=50,
                seed=4,
                transport=TransportSpec(
                    mode="async", overlap="lease", latency="heavy-tail",
                    scheduler="random", gap=0.06,
                ),
            )
            t = res.transport
            return (
                t.events,
                t.lease_grants,
                t.lease_waits,
                tuple(t.lease_wait_times),
                tuple(sorted(t.escalations.items())),
                t.makespan,
            )

        assert run() == run()

    def test_lease_beats_serialize_on_overlap_heavy_makespan(self):
        """The acceptance criterion, pinned at a fixed seed: intersecting
        events interleaved via leases finish the same campaign in less
        virtual time than the PR 4 serialize-whole policy."""
        makespans = {}
        for overlap in ("serialize", "lease"):
            healer = ForgivingTreeHealer(_tree_graph(250, 11))
            res = run_churn_campaign(
                healer,
                OverlapChurnAdversary(seed=3, p_coordinator=0.0, p_overlap=0.75),
                events=80,
                seed=3,
                transport=TransportSpec(
                    mode="async", overlap=overlap, latency="heavy-tail",
                    gap=0.05, barrier_every=0,
                ),
            )
            makespans[overlap] = res.transport.makespan
        assert makespans["lease"] < makespans["serialize"]

    def test_wave_churn_through_leases(self):
        from repro.adversaries import WaveChurnAdversary

        healer = ForgivingTreeHealer(_tree_graph(90, 9))
        res = run_churn_campaign(
            healer,
            WaveChurnAdversary(wave=5, p_wave=0.4, seed=3),
            events=40,
            seed=3,
            transport="lease",
        )
        assert res.transport.events == 40
        assert res.transport.overlap == "lease"

    def test_full_deletion_campaign_through_leases(self):
        from repro.adversaries import RandomAdversary
        from repro.harness import run_campaign

        healer = ForgivingGraphHealer(_tree_graph(50, 12))
        res = run_campaign(
            healer,
            RandomAdversary(seed=2),
            seed=2,
            transport=TransportSpec(mode="async", overlap="lease", gap=0.1),
        )
        assert len(res.rounds) == 49  # down to a single survivor


# ----------------------------------------------------------------------
# the overlap adversary
# ----------------------------------------------------------------------
class TestOverlapAdversary:
    def test_registered_in_catalog(self):
        assert CHURN_ADVERSARY_CATALOG["overlap-churn"] is OverlapChurnAdversary
        assert CHURN_ADVERSARY_CATALOG["scatter-churn"] is ScatterChurnAdversary

    def test_region_ball_shared_helper(self):
        graph = {k: set(v) for k, v in generators.path(7).items()}
        assert region_ball(graph, [3], 1) == {2, 3, 4}
        assert region_ball(graph, [0, 6], 1) == {0, 1, 5, 6}
        assert region_ball(graph, [99], 2) == set()  # dead center
        assert region_ball(graph, [], 2) == set()

    def test_overlap_picks_inside_recent_regions(self):
        healer = ForgivingTreeHealer(_tree_graph(200, 5))
        adv = OverlapChurnAdversary(
            seed=1, p_insert=0.0, p_overlap=1.0, p_coordinator=0.0, radius=2
        )
        adv.reset()
        first = adv.next_event(healer)
        healer.delete(first.nid)
        inside = 0
        for _ in range(15):
            ball = region_ball(healer.graph(), adv._anchors(), adv.radius)
            ev = adv.next_event(healer)
            if ev.nid in ball:
                inside += 1
            healer.delete(ev.nid)
        assert inside >= 12  # overwhelmingly in-region (ball may shrink)

    def test_validation_and_reset(self):
        with pytest.raises(ValueError):
            OverlapChurnAdversary(p_overlap=1.5)
        with pytest.raises(ValueError):
            OverlapChurnAdversary(p_coordinator=-0.1)
        with pytest.raises(ValueError):
            OverlapChurnAdversary(spread=0)
        events = []
        g = _tree_graph(60, 4)
        for _ in range(2):
            healer = ForgivingTreeHealer({k: set(v) for k, v in g.items()})
            adv = OverlapChurnAdversary(seed=9)
            adv.reset()
            events.append(
                [type(adv.next_event(healer)).__name__ for _ in range(6)]
            )
        assert events[0] == events[1]

    def test_scatter_still_scatters_after_refactor(self):
        healer = ForgivingTreeHealer(_tree_graph(80, 3))
        adv = ScatterChurnAdversary(p_insert=0.3, spread=5, radius=2, seed=1)
        res = run_churn_campaign(healer, adv, events=30, seed=1)
        assert len(res.rounds) == 30
