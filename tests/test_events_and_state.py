"""Unit tests for the event records and the Figure-3 state machine types."""

import pytest

from repro.core.events import (
    EdgeAdded,
    EdgeRemoved,
    HealReport,
    HelperCreated,
    WillPortionSent,
    edge_key,
)
from repro.core.state import ALLOWED_TRANSITIONS, HelperState, NodeState


class TestEdgeKey:
    def test_canonical_order(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_event_keys_match(self):
        assert EdgeAdded(9, 1).key() == EdgeRemoved(1, 9).key() == (1, 9)


class TestHealReport:
    def test_totals(self):
        report = HealReport(
            deleted=3,
            messages_per_node={1: 2, 2: 5},
        )
        assert report.total_messages == 7
        assert report.max_messages_per_node == 5

    def test_empty_messages(self):
        report = HealReport(deleted=1)
        assert report.total_messages == 0
        assert report.max_messages_per_node == 0

    def test_describe_mentions_kind(self):
        assert "(leaf)" in HealReport(deleted=1).describe()
        assert "(internal)" in HealReport(deleted=1, was_internal=True).describe()

    def test_events_are_hashable_records(self):
        assert len({HelperCreated(1, 2, True), HelperCreated(1, 2, True)}) == 1
        assert WillPortionSent(1, 2) == WillPortionSent(1, 2)


class TestStateMachine:
    def test_flags_map(self):
        s = NodeState(1, HelperState.READY, True, True, 1)
        assert "isreadyheir=True" in s.flags

    def test_every_state_has_an_exit(self):
        for state in HelperState:
            assert any(a is state for a, _ in ALLOWED_TRANSITIONS)

    def test_wait_cannot_be_reached_from_nothing_illegal(self):
        # There is no transition table entry inventing new states.
        states = {s for pair in ALLOWED_TRANSITIONS for s in pair}
        assert states == set(HelperState)

    def test_nodestate_frozen(self):
        s = NodeState(1, HelperState.WAIT, False, False, 0)
        with pytest.raises(Exception):
            s.nid = 2  # type: ignore[misc]
