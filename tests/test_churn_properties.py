"""Property-based tests (hypothesis) for the churn subsystem.

The churn game's guarantees must hold after *any* interleaving of
insertions and deletions: the image graph stays connected, no node's
degree grows by more than 3 beyond its ideal-graph baseline (binary
case; ``branching + 1`` generally), and every structural invariant
(``invariants.check_all``) passes continuously.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro import ForgivingTree
from repro.core import invariants
from repro.core.slot_tree import SlotTree
from repro.graphs import generators
from repro.graphs.adjacency import is_connected

#: One drawn churn step: (is_insert, pick) — ``pick`` indexes into the
#: current alive set (victim or attachment point) modulo its size.
steps = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=10**6)),
    min_size=1,
    max_size=60,
)


def play(ft: ForgivingTree, script, check_every=1):
    """Interpret a drawn script against an engine, checking continuously."""
    nxt = 10_000
    for i, (is_insert, pick) in enumerate(script):
        alive = sorted(ft.alive)
        if len(alive) <= 1:
            is_insert = True
        target = alive[pick % len(alive)]
        if is_insert:
            ft.insert(nxt, target)
            nxt += 1
        else:
            ft.delete(target)
        if i % check_every == 0:
            assert is_connected(ft.adjacency())
            assert ft.max_degree_increase() <= ft.branching + 1
            invariants.check_all(ft)


class TestChurnProperties:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6), script=steps)
    def test_any_interleaving_keeps_guarantees(self, seed, script):
        tree = generators.random_tree(2 + seed % 15, seed=seed)
        ft = ForgivingTree(tree, strict=False)
        play(ft, script)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6), script=steps)
    def test_generalized_branching_keeps_guarantees(self, seed, script):
        tree = generators.random_tree(2 + seed % 12, seed=seed)
        ft = ForgivingTree(tree, branching=3, strict=False)
        play(ft, script)

    @settings(max_examples=40, deadline=None)
    @given(
        initial=st.lists(
            st.integers(min_value=0, max_value=10**4),
            min_size=0,
            max_size=12,
            unique=True,
        ),
        script=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=10**6)),
            min_size=1,
            max_size=40,
        ),
    )
    def test_slot_tree_survives_any_add_remove_mix(self, initial, script):
        stree = SlotTree(initial)
        nxt = 100_000
        for is_add, pick in script:
            if not stree:
                is_add = True
            if is_add:
                stree.add(nxt)
                nxt += 1
            else:
                stree.remove(stree.stand_ins[pick % len(stree)])
            stree.check()
