"""Exact reproductions of the paper's Figures 1-5.

Node naming follows conftest.FIG5: r=0, p=4, i=5, v=6, j=7, k=8,
a..h = 10..17, m,n,o = 18,19,20 — integer ids chosen so the sorted orders
match the figure (the paper's letters are names, not sort keys; the
figure's wiring implies i < v < j < k).
"""

import pytest

from repro import ForgivingTree
from repro.core.state import HelperState
from tests.conftest import FIG5, FIGURE5_TREE


def edge(a, b):
    return (a, b) if a < b else (b, a)


class TestFigure1:
    """Deleted node v replaced by its Reconstruction Tree."""

    def test_rt_shape_for_eight_children(self):
        n = FIG5
        ft = ForgivingTree(FIGURE5_TREE, strict=True)
        will = ft.will_of(n["v"])
        # Balanced binary search tree over a..h with the heir h rightmost.
        assert will.heir == n["h"]
        assert will.depth() == 3
        ft.delete(n["v"])
        # The heir becomes a ready heir (rectangle in Figure 1)...
        assert ft.state_of(n["h"]).state is HelperState.READY
        # ...and every other child simulates a deployed helper (circles).
        for x in ("a", "b", "c", "d", "e", "f", "g"):
            assert ft.state_of(n[x]).state is HelperState.DEPLOYED

    def test_degree_increase_at_most_three_after_rt(self):
        n = FIG5
        ft = ForgivingTree(FIGURE5_TREE, strict=True)
        ft.delete(n["v"])
        assert ft.max_degree_increase() <= 3


class TestFigure2:
    """Will portions: nextparent / nexthparent / nexthchildren."""

    def test_portions_of_four_child_will(self):
        # x with children a,b,c,h == 1,2,3,8 below parent p.
        ft = ForgivingTree({100: [50], 50: [1, 2, 3, 8]}, root=100, strict=True)
        will = ft.will_of(50)
        assert will.as_shape() == (2, (1, 1, 2), (3, 3, 8))
        # h (the heir): nextparent = c, its ready heir attaches to p and
        # its single helper child is the SubRT root (b's helper).
        assert will.attachment_sim(8) == 3
        assert will.root_sim() == 2
        # b simulates the SubRT root: its helper children are a's and c's.
        assert will.internal_children_refs(2) == [("internal", 1), ("internal", 3)]
        # c's helper hangs below b's and covers leaves c and h.
        assert will.internal_parent_sim(3) == 2
        assert will.internal_children_refs(3) == [("leaf", 3), ("leaf", 8)]

    def test_deployment_matches_portions(self):
        ft = ForgivingTree({100: [50], 50: [1, 2, 3, 8]}, root=100, strict=True)
        ft.delete(50)
        assert ft.edges() == {
            edge(100, 8),  # ready heir h to p
            edge(8, 2),  # heir helper to SubRT root (b)
            edge(2, 1),  # root to a's helper
            edge(2, 3),  # root to c's helper
            edge(1, 2),  # a's helper covers leaf b (dedup)
            edge(3, 8),  # c's helper covers leaf h
            edge(8, 3),  # h's leaf attaches to c (dedup)
        }


class TestFigure3:
    """Wait / Ready / Deployed states and their transitions."""

    def test_initial_states_wait(self):
        ft = ForgivingTree(FIGURE5_TREE)
        for nid in ft.alive:
            assert ft.state_of(nid).state is HelperState.WAIT

    def test_transition_wait_to_ready(self):
        n = FIG5
        ft = ForgivingTree(FIGURE5_TREE, strict=True)
        ft.delete(n["v"])
        assert ft.state_of(n["h"]).state is HelperState.READY
        assert ft.state_of(n["h"]).is_ready_heir

    def test_transition_wait_to_deployed(self):
        n = FIG5
        ft = ForgivingTree(FIGURE5_TREE, strict=True)
        ft.delete(n["v"])
        assert ft.state_of(n["d"]).state is HelperState.DEPLOYED

    def test_transition_ready_to_deployed(self):
        """An heir in ready state relinquishes its role and redeploys
        (Turn 2 of Figure 5)."""
        n = FIG5
        ft = ForgivingTree(FIGURE5_TREE, strict=True)
        ft.delete(n["v"])
        assert ft.state_of(n["h"]).state is HelperState.READY
        ft.delete(n["p"])
        assert ft.state_of(n["h"]).state is HelperState.DEPLOYED

    def test_transitions_all_legal_under_fuzz(self):
        import random

        from repro.core.state import ALLOWED_TRANSITIONS
        from repro.graphs import generators

        tree = generators.random_tree(40, seed=13)
        ft = ForgivingTree(tree, strict=True)
        states = {nid: ft.state_of(nid).state for nid in ft.alive}
        order = sorted(tree)
        random.Random(5).shuffle(order)
        for victim in order:
            ft.delete(victim)
            for nid in ft.alive:
                new = ft.state_of(nid).state
                assert (states[nid], new) in ALLOWED_TRANSITIONS
                states[nid] = new


class TestFigure4:
    """The four leaf-deletion cases."""

    def test_case_a_helper_is_ancestor(self):
        """(a): the deleted leaf's helper is its ancestor — the special
        parent(v) = hparent(v) case; the helper is short-circuited."""
        ft = ForgivingTree({100: [50], 50: [1, 2]}, root=100, strict=True)
        ft.delete(50)
        # 1 simulates the helper above its own leaf; 2 is the ready heir.
        assert ft.state_of(1).state is HelperState.DEPLOYED
        ft.delete(1)
        assert ft.edges() == {edge(100, 2)}
        assert ft.state_of(2).state is HelperState.READY

    def test_case_b_shared_neighbor(self):
        """(b): w and helper(w) share a neighbor — splice + takeover."""
        ft = ForgivingTree({100: [50], 50: [1, 2, 3, 8]}, root=100, strict=True)
        ft.delete(50)
        ft.delete(2)  # simulates the SubRT root; its own leaf sits below 1
        # 1's helper (covering leaves 1,2) was short-circuited; 1 inherits.
        assert ft.state_of(1).is_helper
        assert ft.max_degree_increase() <= 3

    def test_case_c_disjoint_neighbors(self):
        """(c): z and helper(z) share no neighbors — pure inheritance."""
        ft = ForgivingTree({100: [50], 50: list(range(1, 9))}, root=100, strict=True)
        ft.delete(50)
        # node 4 simulates the SubRT root helper; its leaf is remote.
        victim = 4
        assert ft.state_of(victim).state is HelperState.DEPLOYED
        ft.delete(victim)
        from repro.core.invariants import check_full

        check_full(ft)

    def test_case_d_ready_heir_leaf(self):
        """(d): the deleted leaf is an heir in ready state."""
        ft = ForgivingTree({100: [50], 50: [1, 2, 3, 8]}, root=100, strict=True)
        ft.delete(50)
        assert ft.state_of(8).state is HelperState.READY
        ft.delete(8)  # ready heir dies as a leaf
        from repro.core.invariants import check_full

        check_full(ft)
        assert ft.max_degree_increase() <= 3


class TestFigure5:
    """The worked four-turn example, edge for edge."""

    @pytest.fixture()
    def engine(self):
        return ForgivingTree(FIGURE5_TREE, strict=True)

    def test_turn1_delete_v(self, engine):
        n = FIG5
        engine.delete(n["v"])
        E = engine.edges()
        # "h is v's heir and connects to both p and d"
        assert edge(n["h"], n["p"]) in E
        assert edge(n["h"], n["d"]) in E
        # "the real graph now contains a cycle, (b, c, d)"
        assert edge(n["b"], n["c"]) in E
        assert edge(n["c"], n["d"]) in E
        assert edge(n["d"], n["b"]) in E

    def test_turn2_delete_p(self, engine):
        n = FIG5
        engine.delete(n["v"])
        engine.delete(n["p"])
        E = engine.edges()
        # "h takes over the helper role of v in RT(p)"
        assert engine.state_of(n["h"]).state is HelperState.DEPLOYED
        # "d attaches to i"
        assert edge(n["d"], n["i"]) in E
        # "k is p's heir and connects to both h and parent(p)"
        assert engine.state_of(n["k"]).state is HelperState.READY
        assert edge(n["k"], n["h"]) in E
        assert edge(n["k"], n["r"]) in E

    def test_turn3_delete_d(self, engine):
        n = FIG5
        engine.delete(n["v"])
        engine.delete(n["p"])
        engine.delete(n["d"])
        # "The virtual node of c is bypassed and c takes over the helper
        # role of d."
        assert engine.state_of(n["c"]).is_helper
        E = engine.edges()
        assert edge(n["c"], n["b"]) in E
        assert edge(n["c"], n["f"]) in E
        assert edge(n["c"], n["i"]) in E

    def test_turn4_delete_h(self, engine):
        n = FIG5
        for victim in ("v", "p", "d", "h"):
            engine.delete(FIG5[victim])
        E = engine.edges()
        # "Vertices m, n and o take over virtual nodes of RT(h). o is heir
        # of h and takes over h's helper role."
        assert engine.state_of(n["o"]).is_helper
        assert edge(n["o"], n["k"]) in E
        assert edge(n["o"], n["i"]) in E
        assert edge(n["o"], n["j"]) in E
        # "since the number of children of h was not a power of 2, not all
        # the leaves of RT(h) are at the same depth": m,n under n's helper,
        # o directly below the root helper.
        assert edge(n["m"], n["n"]) in E
        assert edge(n["n"], n["g"]) in E

    def test_full_sequence_respects_theorems(self, engine):
        from repro.core.invariants import check_full

        for victim in ("v", "p", "d", "h"):
            engine.delete(FIG5[victim])
            check_full(engine, original_diameter=6, max_degree=8)
        assert engine.max_degree_increase() <= 3
