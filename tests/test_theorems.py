"""Empirical validation of Theorems 1 and 2 and the Section 4.2 remark."""

import math
import random

import pytest

from repro import ForgivingTree
from repro.adversaries import (
    CenterAdversary,
    MaxDegreeAdversary,
    MinDegreeAdversary,
    RandomAdversary,
)
from repro.baselines import (
    BinaryTreeHealer,
    ForgivingTreeHealer,
    LineHealer,
    SurrogateHealer,
)
from repro.extensions import AlphaForgivingTree, tradeoff_point
from repro.graphs import generators, metrics
from repro.harness import bounds, run_campaign


class TestTheorem1Degree:
    @pytest.mark.parametrize("family", ["star", "random", "broom", "binary"])
    @pytest.mark.parametrize(
        "adversary",
        [RandomAdversary(3), MaxDegreeAdversary(), MinDegreeAdversary()],
        ids=["random", "max-degree", "min-degree"],
    )
    def test_degree_increase_at_most_three(self, family, adversary):
        tree = generators.TREE_FAMILIES[family](50, 2)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        result = run_campaign(healer, adversary, measure_diameter=False)
        assert result.peak_degree_increase <= bounds.thm1_degree_bound()

    def test_bound_is_tight(self):
        """Some instance actually reaches +3 (the bound is not slack)."""
        tree = generators.star(16)
        ft = ForgivingTree(tree, strict=True)
        ft.delete(0)
        assert ft.max_degree_increase() == 3


class TestTheorem1Diameter:
    @pytest.mark.parametrize("family", ["star", "random", "broom", "caterpillar"])
    def test_diameter_within_envelope(self, family):
        tree = generators.TREE_FAMILIES[family](60, 4)
        d0 = metrics.diameter_exact(tree)
        delta = max(len(v) for v in tree.values())
        envelope = bounds.thm1_diameter_bound(d0, delta)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        result = run_campaign(healer, CenterAdversary(), measure_diameter=True)
        assert result.peak_diameter <= envelope
        assert result.stayed_connected

    def test_star_diameter_is_logarithmic(self):
        """Deleting a star's center leaves diameter ~ 2 log2(∆)."""
        tree = generators.star(256)
        ft = ForgivingTree(tree, strict=True)
        ft.delete(0)
        healed = metrics.diameter_exact(ft.adjacency())
        assert healed <= 2 * (math.log2(256) + 1) + 2


class TestTheorem1Messages:
    def test_messages_constant_in_n(self):
        """Synthesized per-node message counts do not grow with n."""
        worst = {}
        for n in (20, 80, 200):
            tree = generators.random_tree(n, seed=4)
            ft = ForgivingTree(tree)
            order = sorted(tree)
            random.Random(2).shuffle(order)
            worst[n] = max(ft.delete(v).max_messages_per_node for v in order)
        assert worst[200] <= worst[20] + 4  # flat, not growing with n


class TestTheorem2:
    def test_lower_bound_on_star_for_forgiving_tree(self):
        """α^(2β+1) ≥ ∆ holds for the Forgiving Tree on the star."""
        delta = 128
        tree = generators.star(delta)
        ft = ForgivingTree(tree, strict=True)
        ft.delete(0)
        healed = metrics.diameter_exact(ft.adjacency())
        alpha = max(3, ft.max_degree_increase())
        beta = healed / 2  # the star's diameter is 2
        assert bounds.thm2_lower_bound_holds(alpha, beta, delta)

    @pytest.mark.parametrize("delta", [8, 32, 128])
    def test_lower_bound_for_every_healer(self, delta):
        tree = generators.star(delta)
        for make in (ForgivingTreeHealer, SurrogateHealer, LineHealer, BinaryTreeHealer):
            healer = make({k: set(v) for k, v in tree.items()})
            healer.delete(0)  # kill the center
            g = healer.graph()
            if not g:
                continue
            from repro.graphs.adjacency import is_connected

            assert is_connected(g)
            alpha = max(3, healer.max_degree_increase())
            beta = metrics.diameter_exact(g) / 2
            assert bounds.thm2_lower_bound_holds(alpha, beta, delta), make.name

    def test_min_stretch_formula(self):
        assert bounds.thm2_min_stretch(3, 3 ** 5) == pytest.approx(2.0)
        assert bounds.thm2_min_stretch(3, 1) == 0.0


class TestSection42Tradeoff:
    @pytest.mark.parametrize("alpha", [3, 4, 5, 7])
    def test_alpha_tree_degree_bound(self, alpha):
        tree = generators.star(40)
        ft = AlphaForgivingTree(tree, alpha=alpha, strict=True)
        ft.delete(0)
        assert ft.max_degree_increase() <= alpha

    def test_larger_alpha_gives_smaller_diameter(self):
        tree = generators.star(256)
        healed = {}
        for alpha in (3, 5, 9):
            ft = AlphaForgivingTree(tree, alpha=alpha, strict=True)
            ft.delete(0)
            healed[alpha] = metrics.diameter_exact(ft.adjacency())
        assert healed[9] <= healed[5] <= healed[3]

    def test_beta_promise_met_on_star(self):
        delta = 256
        tree = generators.star(delta)
        for alpha in (3, 5):
            ft = AlphaForgivingTree(tree, alpha=alpha, strict=True)
            ft.delete(0)
            beta = metrics.diameter_exact(ft.adjacency()) / 2
            assert beta <= bounds.section42_stretch_bound(alpha, delta) + 1

    def test_tradeoff_point_fields(self):
        point = tradeoff_point(5, 1024)
        assert point["branching"] == 4
        assert point["beta_floor_thm2"] < point["beta_promise"]

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            AlphaForgivingTree({0: [1]}, alpha=2)
