"""Tests for the simnet subsystem: the discrete-event async transport.

The wall the ISSUE demands: seeded determinism (same seed => identical
event log), sequential-vs-async healed-image convergence at every
quiesce barrier over mixed FT+FG campaigns under all three latency
models and every scheduler (including the adversarial one), Hypothesis
fuzzing over scheduler interleavings, and the >= 4 concurrent in-flight
heals acceptance criterion.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.adversaries import RandomAdversary
from repro.adversaries.churn import (
    RandomChurnAdversary,
    ScatterChurnAdversary,
    WaveChurnAdversary,
)
from repro.baselines.forgiving import ForgivingTreeHealer
from repro.baselines.naive import NoRepairHealer
from repro.core.errors import ProtocolError
from repro.core.forgiving_tree import ForgivingTree
from repro.distributed import DistributedForgivingTree
from repro.fgraph import DistributedForgivingGraph, ForgivingGraph
from repro.fgraph.healer import ForgivingGraphHealer
from repro.graphs import generators
from repro.harness import TRANSPORT_MODES, run_campaign, run_churn_campaign
from repro.simnet import (
    LATENCY_CATALOG,
    SCHEDULER_CATALOG,
    AsyncNetwork,
    ConstantLatency,
    HeavyTailLatency,
    TransportDivergence,
    TransportSpec,
    UniformLatency,
    heal_footprint,
    resolve_latency,
    resolve_scheduler,
    resolve_transport,
)

HEALERS = ((ForgivingTreeHealer, "ft"), (ForgivingGraphHealer, "fg"))


def _tree_graph(n, seed):
    return {k: set(v) for k, v in generators.random_tree(n, seed).items()}


# ----------------------------------------------------------------------
# latency models and schedulers
# ----------------------------------------------------------------------
class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(2.5, seed=1)
        assert model.sample(0, 1) == 2.5

    def test_uniform_bounds(self):
        model = UniformLatency(0.5, 1.5, seed=3)
        draws = [model.sample(0, 1) for _ in range(200)]
        assert all(0.5 <= d <= 1.5 for d in draws)
        assert len(set(draws)) > 1

    def test_heavy_tail_floor_and_cap(self):
        model = HeavyTailLatency(scale=0.5, alpha=1.5, cap=10.0, seed=5)
        draws = [model.sample(0, 1) for _ in range(500)]
        assert all(0.5 <= d <= 10.0 for d in draws)

    def test_heavy_tail_uncapped(self):
        model = HeavyTailLatency(scale=1.0, alpha=1.1, cap=None, seed=5)
        assert max(model.sample(0, 1) for _ in range(50)) >= 1.0

    def test_seeded_reproducibility(self):
        a = resolve_latency("uniform", seed=9)
        b = resolve_latency("uniform", seed=9)
        assert [a.sample(0, 1) for _ in range(20)] == [
            b.sample(0, 1) for _ in range(20)
        ]

    def test_resolve_forms(self):
        assert resolve_latency("constant", 0).name == "constant"
        assert resolve_latency(("uniform", {"low": 1, "high": 2}), 0).high == 2
        inst = ConstantLatency(3.0)
        assert resolve_latency(inst, seed=4) is inst
        with pytest.raises(ValueError):
            resolve_latency("wormhole")

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLatency(0)
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)
        with pytest.raises(ValueError):
            HeavyTailLatency(scale=2.0, cap=1.0)
        assert set(LATENCY_CATALOG) == {"constant", "uniform", "heavy-tail"}


class TestSchedulers:
    def test_catalog(self):
        assert set(SCHEDULER_CATALOG) == {
            "latency",
            "fifo",
            "adversarial",
            "random",
        }
        with pytest.raises(ValueError):
            resolve_scheduler("chaos-monkey")

    def test_policies_pick_legally(self):
        class Env:
            def __init__(self, deliver_at, seq):
                self.deliver_at = deliver_at
                self.seq = seq

        envs = [Env(5.0, 2), Env(1.0, 7), Env(3.0, 0)]
        assert resolve_scheduler("latency").pick(envs).seq == 7
        assert resolve_scheduler("fifo").pick(envs).seq == 0
        assert resolve_scheduler("adversarial").pick(envs).seq == 7
        assert resolve_scheduler("random", seed=3).pick(envs) in envs


# ----------------------------------------------------------------------
# the kernel as a drop-in transport (protocols unmodified)
# ----------------------------------------------------------------------
class TestAsyncNetworkDropIn:
    @pytest.mark.parametrize("latency", sorted(LATENCY_CATALOG))
    def test_ft_protocol_matches_sequential(self, latency):
        tree = generators.random_tree(24, 7)
        dist = DistributedForgivingTree(
            tree, network=AsyncNetwork(latency=latency, seed=11)
        )
        seq = ForgivingTree(tree)
        order = sorted(tree)
        random.Random(5).shuffle(order)
        for nid in order:
            dist.delete(nid)
            seq.delete(nid)
            assert dist.edges() == seq.edges()

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULER_CATALOG))
    def test_fg_protocol_matches_sequential(self, scheduler):
        g = _tree_graph(20, 3)
        dist = DistributedForgivingGraph(
            g, network=AsyncNetwork(scheduler=scheduler, seed=2)
        )
        seq = ForgivingGraph(g, strict=True)
        order = sorted(g)
        random.Random(8).shuffle(order)
        nxt = 1000
        for nid in order[:14]:
            dist.delete(nid)
            seq.delete(nid)
            target = min(seq.alive)
            dist.insert(nxt, target)
            seq.insert(nxt, target)
            nxt += 1
            dist_edges = dist.edges()
            seq_edges = {
                (u, v) for u, vs in seq.graph().items() for v in vs if u < v
            }
            assert dist_edges == seq_edges

    def test_rejects_non_empty_network(self):
        net = AsyncNetwork()
        DistributedForgivingTree({0: [1]}, network=net)
        with pytest.raises(ProtocolError):
            DistributedForgivingTree({0: [1]}, network=net)

    def test_send_requires_context(self):
        from repro.distributed.messages import Message

        net = AsyncNetwork()
        with pytest.raises(ProtocolError):
            net.send(Message(sender=0, recipient=1))

    def test_heal_stats_surface(self):
        net = AsyncNetwork(latency="constant", seed=0)
        dist = DistributedForgivingTree(generators.random_tree(10, 1), network=net)
        stats = dist.delete(3)
        assert stats.quiesced_at >= stats.injected_at
        assert stats.heal_latency == stats.quiesced_at - stats.injected_at
        assert stats.sub_rounds >= 1
        assert net.delivered > 0

    def test_injection_window_discipline(self):
        net = AsyncNetwork()
        net.open_heal(label="one")
        with pytest.raises(ProtocolError):
            net.open_heal(label="two")
        net.close_injection()
        with pytest.raises(ProtocolError):
            net.close_injection()

    def test_open_heals_and_in_flight(self):
        net = AsyncNetwork(latency="constant", seed=0, record_samples=True)
        dist = DistributedForgivingTree(generators.random_tree(12, 2), network=net)
        assert net.open_heals() == []
        hid = net.open_heal(label="delete-0")
        dist.inject_delete(0)
        net.close_injection()
        assert net.open_heals() == [hid]
        heals, queued = net.in_flight()
        assert heals == 1 and queued == net.heal_pending(hid) > 0
        net.quiesce()
        assert net.open_heals() == []
        assert net.heal_pending(hid) == 0
        assert net.heal_stats(hid).quiesced_at >= 0
        assert net.samples  # record_samples keeps the time series

    def test_depth_guard_trips_and_network_survives(self):
        """A heal deeper than max_depth raises instead of livelocking —
        and the rejection happens *before* any accounting window opens,
        so the network stays usable afterwards."""
        from repro.fgraph import DistributedForgivingGraph

        g = {0: {1}, 1: {0}}
        dfg = DistributedForgivingGraph(g, network=AsyncNetwork(max_depth=4))
        # build a deep insertion chain: each cascade climbs the chain
        nxt = 10
        with pytest.raises(ProtocolError):
            for _ in range(10):
                dfg.insert(nxt, nxt - 1 if nxt > 10 else 1)
                nxt += 1
        dfg.insert(50, 0)  # a clean validation failure poisons nothing
        dfg.delete(50)

    def test_insert_batch_accepts_one_shot_iterables(self):
        """Waves may arrive as generators; validation must not consume
        the iterable before injection does."""
        from repro.fgraph import DistributedForgivingGraph

        dist = DistributedForgivingTree(
            generators.random_tree(6, 1), network=AsyncNetwork()
        )
        dist.insert_batch((nid, 0) for nid in (100, 101))
        assert 100 in dist.alive and 101 in dist.alive
        dfg = DistributedForgivingGraph({0: {1}, 1: {0}})
        dfg.insert_batch((nid, 0) for nid in (100, 101))
        assert 100 in dfg.alive and 101 in dfg.alive


# ----------------------------------------------------------------------
# seeded determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def _run(self, seed):
        g = _tree_graph(80, 17)
        healer = ForgivingTreeHealer(g)
        res = run_churn_campaign(
            healer,
            RandomChurnAdversary(p_insert=0.3, seed=4),
            events=60,
            seed=seed,
            transport=TransportSpec(
                mode="async", latency="heavy-tail", scheduler="random", gap=0.1
            ),
        )
        # reach inside: the mirror's network is gone, so capture the log
        # via a fresh mirror-driving run below instead.
        return res

    def test_same_seed_same_event_log(self):
        logs = []
        for _ in range(2):
            net = AsyncNetwork(
                latency="heavy-tail",
                scheduler="random",
                seed=21,
                record_log=True,
            )
            dist = DistributedForgivingTree(
                generators.random_tree(40, 13), network=net
            )
            order = sorted(range(40))
            random.Random(6).shuffle(order)
            for nid in order[:25]:
                dist.delete(nid)
            logs.append(list(net.event_log))
        assert logs[0] == logs[1]
        assert len(logs[0]) > 100

    def test_different_seed_different_schedule(self):
        logs = []
        for seed in (1, 2):
            net = AsyncNetwork(latency="uniform", seed=seed, record_log=True)
            dist = DistributedForgivingTree(
                generators.random_tree(30, 13), network=net
            )
            for nid in range(10):
                dist.delete(nid)
            logs.append(list(net.event_log))
        assert logs[0] != logs[1]

    def test_campaign_transport_summary_deterministic(self):
        summaries = []
        for _ in range(2):
            res = self._run(seed=5)
            t = res.transport
            summaries.append(
                (t.events, t.barriers, t.makespan, tuple(t.heal_latencies))
            )
        assert summaries[0] == summaries[1]


# ----------------------------------------------------------------------
# seq-vs-async convergence at every quiesce barrier (the tentpole wall)
# ----------------------------------------------------------------------
class TestConvergence:
    """>= 10 mixed FT+FG campaigns; every barrier cross-validates the
    healed image node-for-node inside TransportMirror.verify (any
    divergence raises), and finish() closes the loop vs the live oracle."""

    CAMPAIGNS = [
        # (healer_idx, n, tree_seed, adv_seed, latency, scheduler)
        (0, 120, 1, 1, "constant", "latency"),
        (1, 120, 1, 1, "constant", "latency"),
        (0, 90, 2, 2, "uniform", "fifo"),
        (1, 90, 2, 2, "uniform", "fifo"),
        (0, 150, 3, 3, "heavy-tail", "adversarial"),
        (1, 150, 3, 3, "heavy-tail", "adversarial"),
        (0, 70, 4, 4, "uniform", "random"),
        (1, 70, 4, 4, "uniform", "random"),
        (0, 110, 5, 5, "heavy-tail", "random"),
        (1, 110, 5, 5, "heavy-tail", "latency"),
        (0, 60, 6, 6, "constant", "adversarial"),
        (1, 60, 6, 6, "uniform", "adversarial"),
    ]

    @pytest.mark.parametrize("case", CAMPAIGNS)
    def test_mixed_campaign_converges(self, case):
        healer_idx, n, tree_seed, adv_seed, latency, scheduler = case
        factory = HEALERS[healer_idx][0]
        healer = factory(_tree_graph(n, tree_seed))
        res = run_churn_campaign(
            healer,
            RandomChurnAdversary(p_insert=0.35, seed=adv_seed),
            events=70,
            seed=adv_seed,
            transport=TransportSpec(
                mode="async", latency=latency, scheduler=scheduler, gap=0.15
            ),
        )
        t = res.transport
        assert t.events == 70
        assert t.barriers >= 1
        assert t.makespan > 0

    @pytest.mark.parametrize("factory,name", HEALERS)
    def test_wave_churn_converges(self, factory, name):
        healer = factory(_tree_graph(100, 9))
        res = run_churn_campaign(
            healer,
            WaveChurnAdversary(wave=6, p_wave=0.4, seed=3),
            events=50,
            seed=3,
            transport="async",
        )
        assert res.transport.events == 50

    @pytest.mark.parametrize("factory,name", HEALERS)
    def test_full_deletion_campaign_converges(self, factory, name):
        healer = factory(_tree_graph(50, 12))
        res = run_campaign(
            healer,
            RandomAdversary(seed=2),
            seed=2,
            transport=TransportSpec(
                mode="async", latency="heavy-tail", scheduler="adversarial"
            ),
        )
        assert len(res.rounds) == 49  # down to a single survivor

    @pytest.mark.parametrize("factory,name", HEALERS)
    def test_sync_transport_mirrors_per_event(self, factory, name):
        healer = factory(_tree_graph(60, 8))
        res = run_churn_campaign(
            healer,
            RandomChurnAdversary(p_insert=0.3, seed=1),
            events=40,
            seed=1,
            transport="sync",
        )
        t = res.transport
        assert t.mode == "sync"
        assert t.peak_sub_rounds >= 1
        assert t.heal_latencies == []

    def test_acceptance_concurrency_floor(self):
        """The ISSUE's acceptance bar: >= 4 concurrent in-flight churn
        events, converging at every barrier, for both healers, under
        all three latency models."""
        for factory, _name in HEALERS:
            for latency in sorted(LATENCY_CATALOG):
                healer = factory(_tree_graph(250, 42))
                res = run_churn_campaign(
                    healer,
                    ScatterChurnAdversary(p_insert=0.25, seed=7),
                    events=90,
                    seed=11,
                    transport=TransportSpec(
                        mode="async", latency=latency, gap=0.05, barrier_every=16
                    ),
                )
                assert res.transport.peak_in_flight_heals >= 4, (
                    _name,
                    latency,
                    res.transport.peak_in_flight_heals,
                )

    def test_conflicting_events_serialize(self):
        """Hammering one small region must force conflict barriers —
        and still converge."""
        healer = ForgivingGraphHealer(_tree_graph(30, 5))
        res = run_churn_campaign(
            healer,
            RandomChurnAdversary(p_insert=0.4, seed=9),
            events=60,
            seed=9,
            transport=TransportSpec(mode="async", gap=0.01, barrier_every=0),
        )
        assert res.transport.conflict_barriers > 0


# ----------------------------------------------------------------------
# Hypothesis: fuzz over scheduler interleavings
# ----------------------------------------------------------------------
class TestInterleavingFuzz:
    @settings(max_examples=25, deadline=None)
    @given(
        sched_seed=st.integers(min_value=0, max_value=10**6),
        adv_seed=st.integers(min_value=0, max_value=10**6),
        healer_idx=st.integers(min_value=0, max_value=1),
    )
    def test_any_interleaving_converges(self, sched_seed, adv_seed, healer_idx):
        """Each RandomScheduler seed is one legal interleaving; the
        mirror's barriers assert convergence for every sampled one."""
        factory = HEALERS[healer_idx][0]
        healer = factory(_tree_graph(60, 31))
        res = run_churn_campaign(
            healer,
            RandomChurnAdversary(p_insert=0.3, seed=adv_seed),
            events=35,
            seed=sched_seed,
            transport=TransportSpec(
                mode="async",
                latency="uniform",
                scheduler="random",
                gap=0.1,
                barrier_every=5,
            ),
        )
        assert res.transport.events == 35


# ----------------------------------------------------------------------
# transport plumbing
# ----------------------------------------------------------------------
class TestTransportPlumbing:
    def test_transport_modes(self):
        assert TRANSPORT_MODES == ("none", "sync", "async", "lease")
        assert resolve_transport(None) is None
        assert resolve_transport("none") is None
        assert resolve_transport("sync", seed=3).mode == "sync"
        spec = resolve_transport("async", seed=3)
        assert spec.mode == "async" and spec.seed == 3
        assert spec.overlap == "serialize"  # PR 4 behavior is the default
        lease = resolve_transport("lease", seed=5)
        assert lease.mode == "async" and lease.overlap == "lease"
        assert lease.seed == 5
        # an explicit spec seed wins over the campaign seed
        assert resolve_transport(TransportSpec(seed=9), seed=3).seed == 9
        assert resolve_transport(TransportSpec(), seed=3).seed == 3
        with pytest.raises(ValueError):
            resolve_transport("carrier-pigeon")
        with pytest.raises(ValueError):
            TransportSpec(mode="quantum")
        with pytest.raises(ValueError):
            TransportSpec(overlap="optimistic")
        with pytest.raises(ValueError):
            TransportSpec(mode="sync", overlap="lease")
        with pytest.raises(ValueError):
            TransportSpec(overlap="lease", max_wait_chain=0)

    def test_unsupported_healer_raises(self):
        healer = NoRepairHealer(_tree_graph(10, 1))
        with pytest.raises(ValueError):
            run_campaign(
                healer, RandomAdversary(seed=0), rounds=2, transport="async"
            )

    def test_nonbinary_ft_raises(self):
        healer = ForgivingTreeHealer(_tree_graph(10, 1), branching=3)
        with pytest.raises(ValueError):
            run_campaign(
                healer, RandomAdversary(seed=0), rounds=2, transport="sync"
            )

    def test_footprint_contents(self):
        healer = ForgivingGraphHealer(_tree_graph(20, 2))
        report = healer.delete(7)
        fp = heal_footprint(report, graph=healer.graph())
        assert 7 in fp
        assert set(report.messages_per_node) <= fp
        for u, v in report.edges_added | report.edges_removed:
            assert u in fp and v in fp

    def test_divergence_error_is_loud(self):
        from repro.simnet.transport import TransportMirror

        healer = ForgivingGraphHealer(_tree_graph(12, 3))
        mirror = TransportMirror(healer, resolve_transport("async", seed=1))
        report = healer.delete(4)
        mirror.apply(report)
        # sabotage the expected image: the barrier must now blow up
        mirror._expected.add((997, 998))
        with pytest.raises(TransportDivergence):
            mirror.barrier()

    def test_heal_latency_percentiles(self):
        from repro.simnet.transport import TransportSummary

        s = TransportSummary(
            mode="async",
            latency="uniform",
            scheduler="latency",
            seed=0,
            heal_latencies=[1.0, 2.0, 3.0, 4.0],
        )
        pct = s.heal_latency_percentiles
        assert pct["max"] == 4.0
        assert pct["mean"] == 2.5
        assert pct["p50"] in (2.0, 3.0)
        assert TransportSummary(
            mode="async", latency="u", scheduler="l", seed=0
        ).heal_latency_percentiles["p99"] == 0.0

    def test_run_until_advances_clock(self):
        net = AsyncNetwork()
        net.run_until(5.0)
        assert net.clock == 5.0
        net.quiesce()
        assert net.clock == 5.0  # inf horizon never rewinds the clock
        assert not math.isinf(net.clock)


class TestScatterAdversary:
    def test_scatters_and_validates(self):
        healer = ForgivingTreeHealer(_tree_graph(80, 3))
        adv = ScatterChurnAdversary(p_insert=0.3, spread=5, radius=2, seed=1)
        res = run_churn_campaign(healer, adv, events=40, seed=1)
        assert len(res.rounds) == 40
        assert res.n_inserts > 0 and res.n_deletes > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScatterChurnAdversary(p_insert=1.5)
        with pytest.raises(ValueError):
            ScatterChurnAdversary(spread=-1)

    def test_reset_replays(self):
        g = _tree_graph(40, 4)
        events = []
        for _ in range(2):
            healer = ForgivingTreeHealer({k: set(v) for k, v in g.items()})
            adv = ScatterChurnAdversary(seed=3)
            adv.reset()
            events.append(
                [type(adv.next_event(healer)).__name__ for _ in range(5)]
            )
        assert events[0] == events[1]
