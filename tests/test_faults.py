"""Tests for the hostile-network subsystem (repro.faults).

The walls the ISSUE demands: seeded fault determinism (same seed + same
FaultPlan => byte-identical causal event logs and retransmit counts,
across every latency model x scheduler, for FT and FG), exact
retransmit/duplicate parity invariants, counted dead-recipient drops on
both transports, the crash-during-heal acceptance campaign (drop +
duplication + a coordinator killed mid-heal converging to the oracle
image node-for-node, twice, identically), and the repair pass restoring
a deliberately corrupted overlay fixture.
"""

from collections import Counter

import pytest

from repro.adversaries.churn import (
    CHURN_ADVERSARY_CATALOG,
    HostileChurnAdversary,
    RandomChurnAdversary,
)
from repro.baselines.forgiving import ForgivingTreeHealer
from repro.core.errors import ProtocolError
from repro.distributed import DistributedForgivingTree
from repro.distributed.messages import Deleted
from repro.distributed.network import Network
from repro.faults import (
    CRASH_TARGETS,
    VIOLATION_KINDS,
    CrashDuringHeal,
    FaultPlan,
    LinkFaults,
    RepairPass,
    resolve_faults,
)
from repro.fgraph import DistributedForgivingGraph
from repro.fgraph.healer import ForgivingGraphHealer
from repro.graphs import generators
from repro.harness import run_campaign, run_churn_campaign
from repro.obs.slo import SloWatchdog, fault_slos
from repro.simnet import (
    LATENCY_CATALOG,
    SCHEDULER_CATALOG,
    AsyncNetwork,
    TransportSpec,
)

HEALERS = ((ForgivingTreeHealer, "ft"), (ForgivingGraphHealer, "fg"))


def _tree_graph(n, seed):
    return {k: set(v) for k, v in generators.random_tree(n, seed).items()}


def _faulted_run(
    healer_cls,
    plan,
    latency="uniform",
    scheduler="latency",
    overlap="serialize",
    seed=11,
    n=24,
    events=16,
    record_log=True,
    adversary=None,
):
    healer = healer_cls(_tree_graph(n, seed))
    spec = TransportSpec(
        mode="async",
        latency=latency,
        scheduler=scheduler,
        overlap=overlap,
        seed=seed,
        faults=plan,
        record_log=record_log,
    )
    adv = adversary or RandomChurnAdversary(p_insert=0.3, seed=seed)
    return run_churn_campaign(healer, adv, events=events, transport=spec, seed=seed)


# ----------------------------------------------------------------------
# the plan: validation, resolution, retransmit math
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.0)  # needs headroom for the retransmit cap
        with pytest.raises(ValueError):
            FaultPlan(dup=1.5)
        with pytest.raises(ValueError):
            FaultPlan(rto=0.0)
        with pytest.raises(ValueError):
            FaultPlan(backoff=0.5)
        with pytest.raises(ValueError):
            FaultPlan(max_attempts=0)
        with pytest.raises(ValueError):
            FaultPlan(seen_window=0)
        with pytest.raises(ValueError):
            CrashDuringHeal(event=-1)
        with pytest.raises(ValueError):
            CrashDuringHeal(event=0, target="bystander")
        with pytest.raises(ValueError):
            FaultPlan(
                crashes=(CrashDuringHeal(event=2), CrashDuringHeal(event=2))
            )
        with pytest.raises(ValueError):
            FaultPlan(links={(0, 1): 0.5})  # values must be LinkFaults

    def test_active_and_links(self):
        assert not FaultPlan().active
        assert FaultPlan(drop=0.1).active
        assert FaultPlan(crashes=(CrashDuringHeal(event=0),)).active
        plan = FaultPlan(drop=0.1, links={(1, 2): LinkFaults(drop=0.5, dup=0.25)})
        assert plan.link(1, 2) == (0.5, 0.25)
        assert plan.link(2, 1) == (0.1, 0.0)  # overrides are directed
        assert plan.crash_for(0) is None
        crash = CrashDuringHeal(event=3, layer=2, target="participant")
        assert crash.target in CRASH_TARGETS
        plan = FaultPlan(crashes=(crash,))
        assert plan.crash_for(3) is crash

    def test_retransmit_delay_is_exponential_backoff(self):
        plan = FaultPlan(drop=0.1, rto=1.0, backoff=2.0)
        assert plan.retransmit_delay(0) == 0.0
        assert plan.retransmit_delay(1) == 1.0
        assert plan.retransmit_delay(3) == 1.0 + 2.0 + 4.0

    def test_resolve(self):
        assert resolve_faults(None) is None
        plan = FaultPlan(drop=0.2)
        assert resolve_faults(plan) is plan
        assert resolve_faults({"drop": 0.2, "dup": 0.1}) == FaultPlan(
            drop=0.2, dup=0.1
        )
        with pytest.raises(ValueError):
            resolve_faults(0.5)

    def test_faults_need_async_transport(self):
        with pytest.raises(ValueError):
            TransportSpec(mode="sync", faults=FaultPlan(drop=0.1))
        healer = ForgivingTreeHealer(_tree_graph(8, 1))
        with pytest.raises(ValueError):
            run_churn_campaign(
                healer,
                RandomChurnAdversary(seed=1),
                events=2,
                transport="sync",
                faults={"drop": 0.1},
            )


# ----------------------------------------------------------------------
# timeout/retransmit determinism: the pinned-artifact wall
# ----------------------------------------------------------------------
class TestFaultDeterminism:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULER_CATALOG))
    @pytest.mark.parametrize("latency", sorted(LATENCY_CATALOG))
    @pytest.mark.parametrize("healer_cls,tag", HEALERS)
    def test_same_seed_same_plan_identical_logs(
        self, healer_cls, tag, latency, scheduler
    ):
        plan = FaultPlan(drop=0.08, dup=0.04)
        runs = [
            _faulted_run(
                healer_cls, plan, latency=latency, scheduler=scheduler
            )
            for _ in range(2)
        ]
        a, b = (r.transport for r in runs)
        assert a.event_log == b.event_log and a.event_log
        assert a.faults.to_dict() == b.faults.to_dict()
        assert a.makespan == b.makespan

    def test_different_fault_seed_different_faults(self):
        base = FaultPlan(drop=0.15, dup=0.05, seed=1)
        other = FaultPlan(drop=0.15, dup=0.05, seed=2)
        a = _faulted_run(ForgivingTreeHealer, base).transport
        b = _faulted_run(ForgivingTreeHealer, other).transport
        assert a.event_log != b.event_log

    def test_oracle_stream_is_fault_invariant(self):
        """Faults live in the transport mirror only: the oracle's round
        records are identical across fault plans (bench comparability)."""
        clean = _faulted_run(ForgivingTreeHealer, None)
        lossy = _faulted_run(ForgivingTreeHealer, FaultPlan(drop=0.2, dup=0.1))
        assert [r.total_messages for r in clean.rounds] == [
            r.total_messages for r in lossy.rounds
        ]
        assert [r.deleted for r in clean.rounds] == [
            r.deleted for r in lossy.rounds
        ]


# ----------------------------------------------------------------------
# parity invariants: loss absorbed, duplicates cancelled, dead counted
# ----------------------------------------------------------------------
class TestReliableDeliveryParity:
    @pytest.mark.parametrize("healer_cls,tag", HEALERS)
    def test_exact_fault_accounting(self, healer_cls, tag):
        res = _faulted_run(
            healer_cls, FaultPlan(drop=0.15, dup=0.08), events=24, seed=5
        )
        fs = res.faults
        assert fs.drops > 0 and fs.duplicates > 0
        # Every lost attempt was retransmitted; every duplicate copy
        # suppressed — exact, not statistical.
        assert fs.retransmissions == fs.drops
        assert fs.dup_suppressed == fs.duplicates
        assert fs.unrepaired_violations == 0
        # Fault rows land in the causal log, as typed records.
        kinds = {rec.kind for rec in res.transport.event_log}
        assert "drop" in kinds and "dup" in kinds and "dup-suppressed" in kinds

    def test_delivered_counts_base_plus_duplicates(self):
        res = _faulted_run(
            ForgivingTreeHealer, FaultPlan(drop=0.1, dup=0.1), events=24, seed=5
        )
        log = res.transport.event_log
        fs = res.faults
        # Exactly one typed record per arrival, classified: handled
        # deliveries, suppressed duplicates, and dead drops partition
        # the kernel's delivered count.
        kinds = Counter(rec.kind for rec in log)
        assert (
            kinds["deliver"] + kinds["dup-suppressed"] + kinds["dead"]
            == res.transport.messages_delivered
        )
        assert kinds["dup-suppressed"] == fs.dup_suppressed
        assert kinds["dead"] == fs.dead_drops

    def test_max_attempts_caps_consecutive_losses(self):
        # With drop=0.9 and max_attempts=3, no send may record more than
        # 2 lost attempts; the final attempt always delivers.
        plan = FaultPlan(drop=0.9, max_attempts=3)
        res = _faulted_run(ForgivingTreeHealer, plan, events=8, seed=3, n=12)
        fs = res.faults
        assert fs.drops == fs.retransmissions > 0
        assert res.stayed_connected

    def test_sync_network_counts_dead_recipient_drops(self):
        net = Network()

        class _Stub:
            def __init__(self, nid):
                self.nid = nid
                self.network = None

            def handle(self, message):  # pragma: no cover - never called
                raise AssertionError("stub should not receive")

        net.register(_Stub(0))
        net.begin_round(1)
        net.send(Deleted(sender=0, recipient=99, victim=7))
        stats = net.run_round(1)
        assert stats.dead_drops == 1
        assert stats.received == {}

    def test_async_network_counts_dead_recipient_drops(self):
        res = _faulted_run(
            ForgivingTreeHealer,
            FaultPlan(dup=0.0, drop=0.0, crashes=(CrashDuringHeal(event=4),)),
            events=12,
            seed=7,
        )
        # The crash victim's in-flight mail is dead-dropped and counted.
        assert res.faults.crashes == 1
        assert any(rec.kind == "crash" for rec in res.transport.event_log)


# ----------------------------------------------------------------------
# crash-during-heal + repair pass: the acceptance campaign
# ----------------------------------------------------------------------
class TestCrashAndRepair:
    @pytest.mark.parametrize("overlap", ["serialize", "lease"])
    @pytest.mark.parametrize("healer_cls,tag", HEALERS)
    def test_acceptance_campaign_converges_deterministically(
        self, healer_cls, tag, overlap
    ):
        """Drop p=0.05, dup p=0.02, a coordinator crash mid-heal: the
        campaign converges to the oracle image node-for-node (every
        barrier cross-validates, finish() closes against the live
        oracle) and two runs are byte-identical."""
        plan = FaultPlan(
            drop=0.05,
            dup=0.02,
            crashes=(CrashDuringHeal(event=6, layer=1, target="coordinator"),),
        )
        runs = [
            _faulted_run(
                healer_cls, plan, overlap=overlap, seed=7, n=48, events=30
            )
            for _ in range(2)
        ]
        a, b = runs
        assert a.faults.crashes == 1
        assert a.faults.repairs == 1
        assert a.faults.violations > 0
        assert a.faults.unrepaired_violations == 0
        assert a.stayed_connected
        assert sum(1 for r in a.rounds if r.event == "crash") == 1
        assert a.transport.event_log == b.transport.event_log
        assert a.faults.to_dict() == b.faults.to_dict()

    def test_participant_crash(self):
        plan = FaultPlan(
            crashes=(CrashDuringHeal(event=5, layer=0, target="participant"),)
        )
        res = _faulted_run(ForgivingTreeHealer, plan, seed=9, n=32, events=20)
        assert res.faults.crashes == 1
        assert res.faults.unrepaired_violations == 0

    def test_lease_mode_crash_escalates(self):
        plan = FaultPlan(crashes=(CrashDuringHeal(event=6),))
        res = _faulted_run(
            ForgivingGraphHealer, plan, overlap="lease", seed=7, n=48, events=24
        )
        assert res.transport.escalations.get("crash") == 1
        assert res.faults.repairs == 1

    def test_repair_pass_log_line(self):
        plan = FaultPlan(crashes=(CrashDuringHeal(event=4),))
        res = _faulted_run(ForgivingTreeHealer, plan, seed=3, n=32, events=16)
        tags = [rec.tag() for rec in res.transport.event_log]
        assert "crash" in tags and "repair-pass" in tags
        assert tags.index("crash") < tags.index("repair-pass")

    def test_post_repair_heals_keep_parity(self):
        """Events after the recovery still cross-validate exactly — the
        reset-replay rebuild preserves will/helper history, not just the
        image (barrier_every=1 checks every single event)."""
        plan = FaultPlan(crashes=(CrashDuringHeal(event=3),))
        healer = ForgivingTreeHealer(_tree_graph(32, 13))
        spec = TransportSpec(
            mode="async", seed=13, faults=plan, barrier_every=1
        )
        res = run_churn_campaign(
            healer,
            RandomChurnAdversary(p_insert=0.3, seed=13),
            events=20,
            transport=spec,
            seed=13,
        )
        assert res.faults.crashes == 1 and res.faults.unrepaired_violations == 0

    def test_classic_deletion_campaign_supports_faults(self):
        from repro.adversaries import RandomAdversary

        healer = ForgivingTreeHealer(_tree_graph(32, 5))
        res = run_campaign(
            healer,
            RandomAdversary(seed=5),
            rounds=16,
            transport="async",
            seed=5,
            faults={"drop": 0.1, "crashes": (CrashDuringHeal(event=5),)},
        )
        assert res.faults.crashes == 1
        assert res.faults.retransmissions == res.faults.drops


class TestRepairPass:
    def _corrupt(self, n=18, seed=4, kill=None):
        dist = DistributedForgivingTree(generators.random_tree(n, seed))
        victim = kill if kill is not None else max(dist.alive)
        dist.network.remove(victim)  # silent death: no Deleted fan-out
        return dist, victim

    def test_scan_finds_dangling_pointers(self):
        dist, victim = self._corrupt()
        found = RepairPass(dist).scan()
        assert found, "silent node removal must scan dirty"
        kinds = {v.kind for v in found}
        assert kinds <= set(VIOLATION_KINDS)
        assert "dangling-pointer" in kinds
        assert any(str(victim) in v.detail for v in found)

    def test_scan_clean_on_legal_overlay(self):
        dist = DistributedForgivingTree(generators.random_tree(12, 2))
        assert RepairPass(dist).scan() == []
        dist.delete(max(dist.alive))  # a *protocol* heal stays legal
        assert RepairPass(dist).scan() == []

    def test_fg_scan_finds_corruption(self):
        g = _tree_graph(14, 6)
        dist = DistributedForgivingGraph(g)
        dist.network.remove(max(dist.alive))
        assert RepairPass(dist).scan()

    def test_run_restores_corrupted_fixture(self):
        """The acceptance fixture: a deliberately corrupted overlay is
        restored to a valid state that the driver's own check surface
        (image_edges' symmetry validation) accepts again."""
        dist, victim = self._corrupt(n=18, seed=4)
        with pytest.raises(ProtocolError):
            dist.edges()  # the corruption trips the strict check

        def rebuild():
            # Reset-replay in miniature: fresh driver over the oracle's
            # post-crash tree (initial tree minus the victim, re-healed
            # by the sequential engine).
            from repro.core.forgiving_tree import ForgivingTree

            oracle = ForgivingTree(generators.random_tree(18, 4))
            oracle.delete(victim)
            return DistributedForgivingTree(oracle.adjacency())

        report = RepairPass(dist).run(rebuild, victim=victim)
        assert report.victim == victim
        assert report.violations and report.repaired
        assert report.residual == ()
        assert "dangling-pointer" in report.counts()

    def test_failed_repair_is_honest(self):
        dist, victim = self._corrupt()
        report = RepairPass(dist).run(lambda: None, victim=victim)
        assert not report.repaired
        assert report.residual == report.violations


# ----------------------------------------------------------------------
# kernel fault plane, used directly
# ----------------------------------------------------------------------
class TestKernelFaultPlane:
    def test_arm_crash_validates(self):
        net = AsyncNetwork(seed=1)
        with pytest.raises(ProtocolError):
            net.arm_crash(0, 1, victim=42)  # not alive

    def test_adopt_requires_drained_kernel(self):
        dist = DistributedForgivingTree(
            generators.random_tree(8, 1), network=AsyncNetwork(seed=1)
        )
        net = dist.network
        net.open_heal(label="x")
        dist.inject_delete(max(dist.alive))
        with pytest.raises(ProtocolError):
            net.adopt([])
        net.close_injection()
        net.quiesce()
        net.adopt(list(dist.network.nodes.values()))


# ----------------------------------------------------------------------
# SLO budgets + the hostile adversary
# ----------------------------------------------------------------------
class TestFaultSlos:
    def test_converged_campaign_passes_budgets(self):
        res = _faulted_run(
            ForgivingTreeHealer,
            FaultPlan(drop=0.05, dup=0.02, crashes=(CrashDuringHeal(event=5),)),
            seed=7,
            n=48,
            events=24,
        )
        dog = SloWatchdog(fault_slos())
        record = res.faults.window_record(res.transport.events)
        assert dog.evaluate(record) == []
        assert not dog.breached

    def test_leak_breaches(self):
        dog = SloWatchdog(fault_slos())
        record = {
            "events": 100,
            "faults": {
                "retransmit_deficit": 3,
                "dup_leak": 0,
                "unrepaired_violations": 0,
                "retransmissions_per_event": 0.5,
            },
        }
        alerts = dog.evaluate(record)
        assert [a.slo for a in alerts] == ["retransmit-parity"]


class TestHostileChurnAdversary:
    def test_registered_and_deterministic(self):
        assert CHURN_ADVERSARY_CATALOG["hostile-churn"] is HostileChurnAdversary
        healer = ForgivingTreeHealer(_tree_graph(24, 3))
        adv = HostileChurnAdversary(seed=3)
        first = [type(adv.next_event(healer)).__name__ for _ in range(6)]
        adv.reset()
        again = [type(adv.next_event(healer)).__name__ for _ in range(6)]
        assert first == again

    def test_deletion_heavy_faulted_campaign(self):
        res = _faulted_run(
            ForgivingTreeHealer,
            FaultPlan(drop=0.1, dup=0.05, crashes=(CrashDuringHeal(event=7),)),
            seed=9,
            n=48,
            events=30,
            adversary=HostileChurnAdversary(seed=9),
        )
        assert res.adversary_name == "hostile-churn"
        assert res.n_deletes > res.n_inserts
        assert res.faults.unrepaired_violations == 0
        assert res.stayed_connected
