"""Property-based campaign tests (hypothesis): the paper's invariants hold
for random trees under arbitrary deletion orders."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import ForgivingTree
from repro.core.invariants import check_full
from repro.graphs import generators, metrics

CAMPAIGN_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@CAMPAIGN_SETTINGS
@given(
    n=st.integers(2, 48),
    tree_seed=st.integers(0, 10**6),
    order_seed=st.integers(0, 10**6),
)
def test_binary_campaign_invariants(n, tree_seed, order_seed):
    """The paper's protocol: every invariant + theorem bound, every round."""
    tree = generators.random_tree(n, tree_seed)
    d0 = metrics.diameter_exact(tree)
    delta = max(len(v) for v in tree.values())
    ft = ForgivingTree(tree, strict=True)
    order = sorted(tree)
    random.Random(order_seed).shuffle(order)
    for nid in order:
        ft.delete(nid)
        if len(ft) > 1:
            check_full(ft, original_diameter=d0, max_degree=delta)


@CAMPAIGN_SETTINGS
@given(
    n=st.integers(2, 50),
    tree_seed=st.integers(0, 10**6),
    order_seed=st.integers(0, 10**6),
    branching=st.integers(3, 6),
)
def test_generalized_campaign_invariants(n, tree_seed, order_seed, branching):
    """The α-extension within its validated envelope (DESIGN.md §5)."""
    tree = generators.random_tree(n, tree_seed)
    ft = ForgivingTree(tree, strict=True, branching=branching)
    order = sorted(tree)
    random.Random(order_seed).shuffle(order)
    for nid in order:
        ft.delete(nid)
    assert len(ft) == 0


@CAMPAIGN_SETTINGS
@given(
    n=st.integers(2, 40),
    tree_seed=st.integers(0, 10**6),
    order_seed=st.integers(0, 10**6),
)
def test_rebuild_mode_campaign(n, tree_seed, order_seed):
    """Literal Algorithm 3.4 will regeneration is equally safe."""
    tree = generators.random_tree(n, tree_seed)
    ft = ForgivingTree(tree, strict=True, will_mode="rebuild")
    order = sorted(tree)
    random.Random(order_seed).shuffle(order)
    for nid in order:
        ft.delete(nid)
        if len(ft) > 1:
            check_full(ft)


@CAMPAIGN_SETTINGS
@given(
    n=st.integers(3, 40),
    tree_seed=st.integers(0, 10**6),
)
def test_partial_campaign_connectivity(n, tree_seed):
    """Stopping mid-campaign leaves a connected overlay with live wills."""
    tree = generators.random_tree(n, tree_seed)
    ft = ForgivingTree(tree, strict=True)
    order = sorted(tree)
    random.Random(tree_seed).shuffle(order)
    for nid in order[: n // 2]:
        ft.delete(nid)
    check_full(ft)
    for nid in sorted(ft.alive):
        ft.will_of(nid).check()


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 28),
    deg_target=st.booleans(),
    tree_seed=st.integers(0, 10**6),
)
def test_adversarial_orders_degree_bound(n, deg_target, tree_seed):
    """Greedy hub/leaf targeting never breaks the +3 bound."""
    tree = generators.random_tree(n, tree_seed)
    ft = ForgivingTree(tree, strict=True)
    while len(ft) > 0:
        adjacency = ft.adjacency()
        key = (lambda x: (len(adjacency[x]), x)) if deg_target else (
            lambda x: (-len(adjacency[x]), x)
        )
        victim = max(sorted(adjacency), key=key)
        ft.delete(victim)
        assert ft.max_degree_increase() <= 3
