"""The Forgiving Graph subsystem test wall.

Four layers, mirroring the subsystem's structure:

* **ReconstructionTree** — the half-full build: the
  ``depth <= ceil(log2(W/w))`` guarantee, full-binary shape, injective
  in-order-predecessor simulator assignment, merge/split manifest
  algebra (property-tested over arbitrary weight profiles).
* **ForgivingGraph engine** — the paper's two theorems pinned per round
  over seeded churn traces and arbitrary Hypothesis interleavings:
  additive degree increase <= 3, empirical stretch within the
  ``2 log2 n + 2`` envelope against the ideal graph (dead nodes
  routable), connectivity, and the full structural ``check()``.
* **Healer integration** — the catalog, every churn adversary and both
  campaign runners driving ``forgiving-graph`` unmodified, batch wave
  semantics, and the incremental-metrics fast path.
* **Sequential-vs-distributed parity** — the counted-message runtime
  produces byte-identical image graphs and *node-for-node* identical
  message tallies across randomized mixed campaigns.
"""

import math
import random

import pytest

from tests.conftest import *  # noqa: F401,F403 - shared fixtures

from repro.adversaries import (
    GrowthThenMassacreAdversary,
    MaxDegreeAdversary,
    OscillatingChurnAdversary,
    RandomAdversary,
    RandomChurnAdversary,
    SurrogateKillerAdversary,
    TraceReplayAdversary,
    WaveChurnAdversary,
)
from repro.baselines import ForgivingGraphHealer, ForgivingTreeHealer, healer_catalog
from repro.churn import synthetic_skype_outage
from repro.core.errors import (
    DuplicateNodeError,
    InvariantViolationError,
    NodeNotFoundError,
    ReproError,
)
from repro.fgraph import (
    DistributedForgivingGraph,
    ForgivingGraph,
    ReconstructionTree,
    fold_manifests,
    leaf_depth,
    target_depths,
)
from repro.graphs import generators
from repro.graphs.adjacency import bfs_distances, edges as edge_set, is_connected
from repro.harness import churn_duel, run_campaign, run_churn_campaign

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


# ---------------------------------------------------------------------------
# ReconstructionTree
# ---------------------------------------------------------------------------
class TestReconstructionTree:
    def test_two_leaves(self):
        rt = ReconstructionTree.build([(5, 1), (9, 1)])
        rt.check()
        assert rt.n_helpers == 1
        assert rt.members == {5, 9}
        # The lone helper is simulated by a member; the image collapses
        # to the single surviving real-real edge.
        assert rt.image_edges() == {(5, 9)}

    def test_heavy_leaf_sits_at_the_root(self):
        rt = ReconstructionTree.build([(1, 100), (2, 1), (3, 1), (4, 1)])
        rt.check()
        assert rt.depth[1] == 1
        assert all(rt.depth[n] >= 2 for n in (2, 3, 4))

    def test_build_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            ReconstructionTree.build([(1, 1)])
        with pytest.raises(ValueError):
            ReconstructionTree.build([(1, 0), (2, 1)])

    def test_deterministic_in_input_set(self):
        leaves = [(3, 4), (1, 1), (7, 2), (2, 9)]
        a = ReconstructionTree.build(leaves)
        b = ReconstructionTree.build(list(reversed(leaves)))
        assert a.port_parent == b.port_parent
        assert a.helper_links == b.helper_links
        assert a.image_edges() == b.image_edges()

    def test_fold_manifests_merge_split_refresh(self):
        folded = fold_manifests(
            [{1: 2, 2: 3}, {4: 1}],
            drop=(2,),
            fresh={5: 7},
            refresh={1: 10, 99: 5},  # 99 is no member: ignored
        )
        assert folded == [(1, 10), (4, 1), (5, 7)]

    @settings(max_examples=200, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=1, max_value=10**6), min_size=2, max_size=64
        )
    )
    def test_depth_bound_and_shape_for_any_weights(self, weights):
        leaves = list(enumerate(weights))
        rt = ReconstructionTree.build(leaves)
        rt.check()  # full binary, injective sims, parent refs thread
        total = sum(weights)
        for nid, w in leaves:
            assert rt.depth[nid] <= leaf_depth(w, total)
            assert rt.depth[nid] <= math.log2(total / w) + 1 + 1e-9
        # One helper per internal node of a full binary tree.
        assert rt.n_helpers == len(leaves) - 1

    @settings(max_examples=60, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=1, max_value=50), min_size=2, max_size=24
        )
    )
    def test_image_is_connected_and_sparse(self, weights):
        rt = ReconstructionTree.build(list(enumerate(weights)))
        img = {n: set() for n in rt.members}
        for u, v in rt.image_edges():
            img[u].add(v)
            img[v].add(u)
        assert is_connected(img)
        # Degree discipline: port (1) + a simulated helper (<= 3).
        assert all(len(s) <= 4 for s in img.values())


# ---------------------------------------------------------------------------
# the sequential engine
# ---------------------------------------------------------------------------
def _stretch_ok(engine: ForgivingGraph, sample: int = 6, seed: int = 0) -> None:
    """Healed distances stay inside the 2·log2(n)+2 per-crossing envelope
    relative to the ideal graph with dead nodes routable."""
    alive = sorted(engine.alive)
    if len(alive) < 2:
        return
    ideal = engine.ideal_graph(include_dead=True)
    image = engine.graph()
    bound = 2 * math.log2(len(ideal)) + 2
    rng = random.Random(seed)
    sources = rng.sample(alive, min(sample, len(alive)))
    for u in sources:
        di = bfs_distances(ideal, u)
        dh = bfs_distances(image, u)
        for v in alive:
            d0 = di.get(v)
            if v == u or d0 in (None, 0):
                continue
            assert dh.get(v) is not None, f"{u}->{v} unreachable in the image"
            assert dh[v] <= max(d0, bound * d0), (
                f"stretch blown: d_H({u},{v})={dh[v]} vs d_G={d0}, n={len(ideal)}"
            )


def _play_engine(engine: ForgivingGraph, rng: random.Random, steps: int) -> None:
    nxt = 10_000
    for _ in range(steps):
        alive = sorted(engine.alive)
        if not alive:
            break
        if len(alive) > 1 and rng.random() < 0.55:
            engine.delete(rng.choice(alive))
        else:
            engine.insert(nxt, rng.choice(alive))
            nxt += 1
        assert engine.max_degree_increase() <= 3
        assert is_connected(engine.graph())


class TestForgivingGraphEngine:
    @pytest.mark.parametrize("seed", range(8))
    def test_churn_trace_keeps_both_theorems(self, seed):
        g = (
            generators.random_tree(18, seed=seed)
            if seed % 2
            else generators.random_connected_gnp(16, 0.25, seed=seed)
        )
        engine = ForgivingGraph(g, strict=True)  # check() every event
        _play_engine(engine, random.Random(seed), steps=40)
        _stretch_ok(engine, seed=seed)

    def test_general_graphs_are_first_class(self):
        g = generators.random_connected_gnp(30, 0.2, seed=5)
        engine = ForgivingGraph(g, strict=True)
        rng = random.Random(5)
        for _ in range(20):
            engine.delete(rng.choice(sorted(engine.alive)))
        assert engine.max_degree_increase() <= 3
        assert is_connected(engine.graph())
        _stretch_ok(engine, seed=5)

    def test_one_haft_per_node_after_region_merges(self):
        # A path: the single-port rule merges hafts through shared
        # surviving members as soon as a node would acquire a second
        # port, so walking deletions down the path keeps ONE haft.
        engine = ForgivingGraph(generators.path(11), strict=True)
        engine.delete(1)
        assert len(engine.hafts) == 1
        assert engine.hafts[0].members == {0, 2}
        for v in (3, 5, 7, 9):
            engine.delete(v)  # survivor 2 (4, 6, 8) would get 2 ports
        assert len(engine.hafts) == 1
        assert engine.hafts[0].members == {0, 2, 4, 6, 8, 10}
        for v in (2, 4, 6, 8):
            engine.delete(v)
        # One connected dead region -> one haft over the two survivors.
        assert len(engine.hafts) == 1
        assert engine.hafts[0].members == {0, 10}
        assert is_connected(engine.graph())

    def test_separated_regions_keep_separate_hafts(self):
        engine = ForgivingGraph(generators.path(9), strict=True)
        engine.delete(1)
        engine.delete(7)  # far from the first hole: no shared member
        assert len(engine.hafts) == 2
        assert engine.hafts[0].members == {0, 2}
        assert engine.hafts[1].members == {6, 8}

    def test_heir_promotion_dissolves_one_leaf_regions(self):
        engine = ForgivingGraph(generators.path(3), strict=True)
        engine.delete(1)  # haft over {0, 2}
        assert len(engine.hafts) == 1
        engine.delete(2)  # lone leaf 0 promoted; region dissolves
        assert engine.hafts == []
        assert engine.graph() == {0: set()}

    def test_insert_updates_weights_up_the_live_chain(self):
        engine = ForgivingGraph(generators.star(3), strict=True)
        engine.insert(10, 1)
        engine.insert(11, 10)
        engine.insert(12, 11)
        assert engine.weight_of(12) == 1
        assert engine.weight_of(11) == 2
        assert engine.weight_of(10) == 3
        assert engine.weight_of(1) == 4
        # Initial nodes are insertion-forest roots: the cascade stops at 1.
        assert engine.weight_of(0) == 1
        # The cascade pays one message per live hop (request, ack+forward,
        # then one forward per ancestor that has a parent of its own).
        report = engine.insert(13, 12)
        assert report.messages_per_node == {13: 1, 12: 2, 11: 1, 10: 1}
        assert engine.weight_of(1) == 5

    def test_dead_insertion_parent_truncates_the_cascade(self):
        engine = ForgivingGraph(generators.star(3), strict=True)
        engine.insert(10, 1)
        engine.insert(11, 10)
        engine.delete(10)  # 11 becomes an insertion-forest root
        report = engine.insert(12, 11)
        assert report.messages_per_node == {12: 1, 11: 1}
        assert engine.weight_of(11) == 2

    def test_port_weights_key_the_rebuild(self):
        # Grow a heavy population under one neighbor of the victim: its
        # port must sit strictly shallower than the light neighbors'.
        star = generators.star(6)  # center 0, leaves 1..6
        engine = ForgivingGraph(star, strict=True)
        for i in range(40):
            engine.insert(100 + i, 1)
        engine.delete(0)
        haft = engine.hafts[0]
        assert haft.weight[1] == 41
        assert haft.depth[1] < min(haft.depth[n] for n in (2, 3, 4, 5, 6))

    def test_id_and_liveness_validation(self):
        engine = ForgivingGraph({0: [1], 1: [0]})
        with pytest.raises(DuplicateNodeError):
            engine.insert(0, 1)
        with pytest.raises(NodeNotFoundError):
            engine.insert(5, 99)
        engine.delete(1)
        with pytest.raises(NodeNotFoundError):
            engine.delete(1)
        with pytest.raises(DuplicateNodeError):
            engine.insert(1, 0)  # ids are never reused

    def test_report_deltas_are_exact(self):
        engine = ForgivingGraph(generators.star(4), strict=True)
        before = edge_set(engine.graph())
        report = engine.delete(0)
        after = edge_set(engine.graph())
        assert after - before == set(report.edges_added)
        assert before - after == set(report.edges_removed)
        assert report.was_internal

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        script=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=10**6)),
            min_size=1,
            max_size=50,
        ),
    )
    def test_any_interleaving_keeps_guarantees(self, seed, script):
        n = 3 + seed % 14
        g = (
            generators.random_tree(n, seed=seed)
            if seed % 3
            else generators.random_connected_gnp(n, 0.3, seed=seed)
        )
        engine = ForgivingGraph(g, strict=True)
        nxt = 10_000
        for is_insert, pick in script:
            alive = sorted(engine.alive)
            if len(alive) <= 1:
                is_insert = True
            target = alive[pick % len(alive)]
            if is_insert:
                engine.insert(nxt, target)
                nxt += 1
            else:
                engine.delete(target)
            assert engine.max_degree_increase() <= 3
            assert is_connected(engine.graph())
        _stretch_ok(engine, sample=3, seed=seed)


# ---------------------------------------------------------------------------
# healer + harness integration
# ---------------------------------------------------------------------------
CHURN_ADVERSARIES = [
    lambda: RandomChurnAdversary(p_insert=0.45, seed=11),
    lambda: WaveChurnAdversary(wave=5, p_wave=0.3, seed=12),
    lambda: GrowthThenMassacreAdversary(growth=25, seed=13),
    lambda: OscillatingChurnAdversary(period=8, seed=14),
]


class TestHealerIntegration:
    def test_registered_in_the_catalog(self):
        catalog = healer_catalog()
        assert catalog["forgiving-graph"] is ForgivingGraphHealer

    @pytest.mark.parametrize("make_adversary", CHURN_ADVERSARIES)
    def test_every_churn_adversary_runs_unmodified(self, make_adversary):
        g = generators.random_tree(60, seed=21)
        healer = ForgivingGraphHealer({k: set(v) for k, v in g.items()})
        result = run_churn_campaign(healer, make_adversary(), events=90, seed=21)
        assert result.rounds
        assert result.stayed_connected
        assert result.peak_degree_increase <= 3
        assert healer.engine.max_degree_increase() <= 3
        healer.engine.check()

    @pytest.mark.parametrize(
        "adversary",
        [RandomAdversary(seed=3), MaxDegreeAdversary(), SurrogateKillerAdversary()],
        ids=["random", "max-degree", "surrogate-killer"],
    )
    def test_classic_deletion_campaigns(self, adversary):
        g = generators.random_tree(50, seed=22)
        healer = ForgivingGraphHealer({k: set(v) for k, v in g.items()})
        result = run_campaign(healer, adversary, rounds=45, seed=22)
        assert result.stayed_connected
        assert result.peak_degree_increase <= 3

    def test_skype_trace_replay_duel(self):
        overlay, trace = synthetic_skype_outage()
        results = churn_duel(
            overlay,
            [ForgivingTreeHealer, ForgivingGraphHealer],
            lambda: TraceReplayAdversary(trace),
            events=len(trace),
        )
        fg = results["forgiving-graph"]
        assert fg.stayed_connected
        assert fg.peak_degree_increase <= 3
        assert fg.n_inserts and fg.n_deletes

    def test_incremental_metrics_fast_path(self):
        # Churn campaigns default to metrics="auto"; the FG image keeps
        # chords, so the tracker serves the tree-overlay upper bracket.
        g = generators.random_tree(40, seed=23)
        healer = ForgivingGraphHealer({k: set(v) for k, v in g.items()})
        result = run_churn_campaign(
            healer, RandomChurnAdversary(p_insert=0.4, seed=23), events=60, seed=23
        )
        measured = [r.diameter for r in result.rounds if r.diameter is not None]
        assert measured, "per-round diameter tracking fell over"
        assert all(r.stretch is not None for r in result.rounds if r.diameter)

    def test_batch_waves_share_engine_semantics(self):
        g = generators.star(4)
        healer = ForgivingGraphHealer({k: set(v) for k, v in g.items()})
        report = healer.insert_batch([(10, 0), (11, 1), (12, 1)])
        assert report.inserted_batch == ((10, 0), (11, 1), (12, 1))
        assert healer.rounds == 1
        assert healer.alive >= {10, 11, 12}
        with pytest.raises(ReproError):
            healer.insert_batch([(13, 14), (14, 0)])  # attach to same-wave joiner
        with pytest.raises(ReproError):
            healer.insert_batch([(10, 0)])  # ids never reused

    def test_ideal_graph_views(self):
        g = generators.path(4)
        healer = ForgivingGraphHealer({k: set(v) for k, v in g.items()})
        healer.insert(10, 3)
        healer.delete(1)
        ghost = healer.ideal_graph(include_dead=True)
        assert 1 in ghost and ghost[1] == {0, 2}
        alive_only = healer.ideal_graph()
        assert 1 not in alive_only
        assert alive_only[10] == {3}


# ---------------------------------------------------------------------------
# sequential vs distributed: exact cross-validation
# ---------------------------------------------------------------------------
class TestDistributedParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_mixed_campaign_message_and_image_parity(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 20)
        g = (
            generators.random_tree(n, seed=seed)
            if seed % 2
            else generators.random_connected_gnp(n, 0.3, seed=seed)
        )
        seq = ForgivingGraph(g, strict=(seed < 4))
        dist = DistributedForgivingGraph({k: set(v) for k, v in g.items()})
        nxt = max(g) + 1
        for _ in range(40):
            alive = sorted(seq.alive)
            if not alive:
                break
            roll = rng.random()
            if len(alive) > 1 and roll < 0.5:
                victim = rng.choice(alive)
                report, stats = seq.delete(victim), dist.delete(victim)
            elif roll < 0.8 or len(alive) <= 1:
                target = rng.choice(alive)
                report, stats = seq.insert(nxt, target), dist.insert(nxt, target)
                nxt += 1
            else:
                wave = [(nxt + i, rng.choice(alive)) for i in range(rng.randint(2, 5))]
                nxt += len(wave)
                report, stats = seq.insert_batch(wave), dist.insert_batch(wave)
            # The cross-check the subsystem exists to pass: node-for-node.
            assert report.messages_per_node == stats.sent
            assert edge_set(seq.graph()) == dist.edges()
            assert seq.alive == dist.alive

    def test_single_insert_is_a_wave_of_one(self):
        g = generators.path(4)
        seq = ForgivingGraph(g)
        report = seq.insert(9, 1)
        dist = DistributedForgivingGraph({k: set(v) for k, v in g.items()})
        stats = dist.insert_batch([(9, 1)])
        assert report.messages_per_node == stats.sent

    def test_distributed_rejects_bad_waves(self):
        dist = DistributedForgivingGraph({0: {1, 2}, 1: {0}, 2: {0}})
        with pytest.raises(ReproError):
            dist.insert_batch([(5, 6), (6, 0)])
        with pytest.raises(ReproError):
            dist.insert_batch([(0, 1)])
        with pytest.raises(ValueError):
            dist.insert_batch([])
        assert dist.alive == {0, 1, 2}

    def test_degree_bound_holds_in_the_distributed_image(self):
        g = generators.random_connected_gnp(18, 0.25, seed=9)
        dist = DistributedForgivingGraph({k: set(v) for k, v in g.items()})
        rng = random.Random(9)
        for _ in range(12):
            dist.delete(rng.choice(sorted(dist.alive)))
        assert dist.max_degree_increase() <= 3
        assert is_connected(dist.adjacency())

    def test_heal_round_is_three_phase(self):
        # Fan-out, reports, portions: a delete quiesces in <= 3 sub-rounds.
        g = generators.star(6)
        dist = DistributedForgivingGraph({k: set(v) for k, v in g.items()})
        stats = dist.delete(0)
        assert stats.sub_rounds <= 3
        assert stats.bits > 0

    def test_deep_insertion_chains_are_rejected_loudly(self):
        # The weight cascade pays one sub-round per insertion-forest hop;
        # a chain deeper than the livelock guard must be refused up front
        # (clear error, no half-applied round) rather than aborting with
        # an opaque quiescence failure mid-cascade.
        from repro.core.errors import ProtocolError

        dist = DistributedForgivingGraph({0: {1}, 1: {0}})
        dist.network.max_sub_rounds = 8
        nxt = 2
        with pytest.raises(ProtocolError, match="insertion-forest chain"):
            for _ in range(12):  # each joiner chains under the previous
                dist.insert(nxt, nxt - 1)
                nxt += 1
        assert nxt > 5  # shallow part of the chain was fine
        assert nxt not in dist.alive  # the rejected round left no state

    def test_round_stats_accessors(self):
        g = generators.path(5)
        dist = DistributedForgivingGraph({k: set(v) for k, v in g.items()})
        assert dist.setup_stats.total_messages == 0  # no will setup traffic
        dist.delete(2)
        assert dist.last_stats().round == 1
        assert dist.peak_messages_per_node() >= 1
        assert dist.degree(1) >= 1
        assert len(dist) == 4 and 1 in dist and 2 not in dist
        with pytest.raises(NodeNotFoundError):
            dist.delete(2)


# ---------------------------------------------------------------------------
# API surface + validator teeth
# ---------------------------------------------------------------------------
class TestSurfaceAndValidators:
    def test_rtree_accessors(self):
        leaves = [(1, 3), (2, 1), (3, 1)]
        assert target_depths(leaves) == {1: 1, 2: 3, 3: 3}
        rt = ReconstructionTree.build(leaves)
        assert rt.total_weight == 5
        assert rt.manifest() == ((1, 3), (2, 1), (3, 1))
        sims = [m for m in rt.members if rt.sim_of(m) is not None]
        assert len(sims) == rt.n_helpers  # one helper per simulator
        assert repr(rt)

    def test_rtree_check_has_teeth(self):
        rt = ReconstructionTree.build([(1, 1), (2, 1), (3, 1)])
        rt.depth[2] = 99
        with pytest.raises(InvariantViolationError):
            rt.check()

    def test_engine_accessors(self):
        engine = ForgivingGraph(generators.path(4))
        assert len(engine) == 4 and 2 in engine and 9 not in engine
        assert engine.ideal_degree(1) == 2
        assert engine.adjacency() == engine.graph()
        assert engine.haft_of(1) is None
        engine.delete(1)
        assert engine.haft_of(0) is engine.hafts[0]
        with pytest.raises(NodeNotFoundError):
            engine.degree_increase(1)
        assert repr(engine)

    def test_engine_check_has_teeth(self):
        engine = ForgivingGraph(generators.path(5))
        engine.delete(2)
        engine._img[0][4] = 1  # corrupt the image multiset
        engine._img[4][0] = 1
        with pytest.raises(InvariantViolationError):
            engine.check()

    def test_empty_initial_graphs_are_rejected(self):
        with pytest.raises(NodeNotFoundError):
            ForgivingGraph({})
        with pytest.raises(NodeNotFoundError):
            DistributedForgivingGraph({})

    def test_delete_to_extinction(self):
        engine = ForgivingGraph(generators.path(3))
        for v in (1, 0, 2):
            engine.delete(v)
        assert engine.alive == set()
        assert engine.graph() == {}
        with pytest.raises(ReproError):
            engine.delete(0)
