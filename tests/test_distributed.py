"""Tests for the distributed runtime: protocol flows, cross-validation
against the sequential engine, and the Theorem 1.3 communication bounds.

The cross-validation envelope: scripted scenarios of any shape plus random
trees with random full-deletion campaigns up to n = 24.  Every sampled
seed passes since the own-helper-skip inheritance and vacuous-bypass claim
fixes; churn campaigns cross-validate in test_churn.py."""

import random

import pytest

from repro import ForgivingTree
from repro.core.errors import NodeNotFoundError, SimulationOverError
from repro.distributed import DistributedForgivingTree
from repro.graphs import generators
from tests.conftest import FIG5, FIGURE5_TREE


def cross_validate(tree, order):
    seq = ForgivingTree(tree, strict=True)
    dist = DistributedForgivingTree(tree)
    assert seq.edges() == dist.edges()
    for nid in order:
        seq.delete(nid)
        dist.delete(nid)
        assert seq.edges() == dist.edges(), f"diverged after deleting {nid}"
    return dist


class TestBasicProtocol:
    def test_initial_edges_match_tree(self):
        dist = DistributedForgivingTree({0: [1, 2], 1: [3]})
        assert dist.edges() == {(0, 1), (0, 2), (1, 3)}

    def test_star_center_death(self):
        dist = DistributedForgivingTree({0: [1, 2, 3, 4]})
        dist.delete(0)
        assert dist.edges() == {(1, 2), (2, 3), (2, 4), (3, 4)}
        assert dist.max_degree_increase() <= 3

    def test_setup_costs_constant_per_tree_edge(self):
        for n in (10, 40):
            tree = generators.random_tree(n, seed=1)
            dist = DistributedForgivingTree(tree)
            # O(1) messages per tree edge: portions + leaf wills.
            assert dist.setup_stats.total_messages <= 3 * (n - 1) + n

    def test_delete_unknown(self):
        dist = DistributedForgivingTree({0: [1]})
        with pytest.raises(NodeNotFoundError):
            dist.delete(9)

    def test_delete_after_empty(self):
        dist = DistributedForgivingTree({0: [1]})
        dist.delete(0)
        dist.delete(1)
        with pytest.raises(SimulationOverError):
            dist.delete(1)


class TestCrossValidation:
    def test_figure5_sequence(self):
        order = [FIG5[x] for x in ("v", "p", "d", "h")]
        cross_validate({k: list(v) for k, v in FIGURE5_TREE.items()}, order)

    @pytest.mark.parametrize(
        "order", [[0, 1, 2, 3, 4], [1, 2, 3, 0, 4], [4, 3, 2, 1, 0]]
    )
    def test_star_orders(self, order):
        cross_validate({0: [1, 2, 3, 4]}, order)

    def test_path_orders(self):
        cross_validate(generators.path(8), [3, 4, 2, 5, 1, 6, 0, 7])

    #: All seeds pass since the own-helper-skip inheritance and
    #: vacuous-bypass claim fixes (found by the churn cross-validation);
    #: the formerly excluded deep-state corner cases (5, 6, 8, 16) are
    #: exactly the states those fixes repair.
    @pytest.mark.parametrize("seed", range(25))
    def test_random_trees_random_orders(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 24)
        tree = generators.random_tree(n, rng.randint(0, 10**6))
        order = sorted(tree)
        rng.shuffle(order)
        cross_validate(tree, order)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees_leaf_first(self, seed):
        rng = random.Random(100 + seed)
        n = rng.randint(3, 24)
        tree = generators.random_tree(n, rng.randint(0, 10**6))
        seq = ForgivingTree(tree, strict=True)
        dist = DistributedForgivingTree(tree)
        while len(dist) > 0:
            g = seq.adjacency()
            victim = min(sorted(g), key=lambda x: (len(g[x]), x))
            seq.delete(victim)
            dist.delete(victim)
            assert seq.edges() == dist.edges()

    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees_hub_first(self, seed):
        rng = random.Random(200 + seed)
        n = rng.randint(3, 24)
        tree = generators.random_tree(n, rng.randint(0, 10**6))
        seq = ForgivingTree(tree, strict=True)
        dist = DistributedForgivingTree(tree)
        while len(dist) > 0:
            g = seq.adjacency()
            victim = max(sorted(g), key=lambda x: (len(g[x]), x))
            seq.delete(victim)
            dist.delete(victim)
            assert seq.edges() == dist.edges()


class TestTheorem13Accounting:
    def test_per_node_messages_constant(self):
        """Max messages sent/received per node per round is O(1) — flat
        across network sizes (Theorem 1.3)."""
        peaks = {}
        for n in (8, 16, 24):
            tree = generators.random_tree(n, seed=3)
            dist = DistributedForgivingTree(tree)
            order = sorted(tree)
            random.Random(3).shuffle(order)
            for victim in order:
                dist.delete(victim)
            peaks[n] = dist.peak_messages_per_node()
        assert peaks[24] <= peaks[8] + 6

    def test_latency_constant(self):
        """Sub-rounds per heal round stay O(1)."""
        tree = generators.random_tree(24, seed=9)
        dist = DistributedForgivingTree(tree)
        order = sorted(tree)
        random.Random(7).shuffle(order)
        for victim in order:
            stats = dist.delete(victim)
            assert stats.sub_rounds <= 8

    def test_messages_carry_constant_ids(self):
        from repro.distributed.messages import ReplaceChild, SimChange

        assert ReplaceChild(1, 2, 3, (4, "real")).id_count() <= 8
        assert SimChange(1, 2, 3, 4, "your-hparent").id_count() <= 8

    def test_round_stats_exposed(self):
        dist = DistributedForgivingTree({0: [1, 2, 3]})
        stats = dist.delete(0)
        assert stats.total_messages > 0
        assert stats.max_sent_per_node >= 1
        assert dist.last_stats() is stats
