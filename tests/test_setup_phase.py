"""Tests for the distributed setup phase (BFS + Cohen-style estimation)."""

import math

import pytest

from repro.graphs import adjacency as adj
from repro.graphs import generators as gen
from repro.graphs import metrics
from repro.distributed.setup import distributed_bfs_setup, size_estimate


class TestDistributedBfs:
    def test_tree_output_is_spanning_tree(self):
        g = gen.random_connected_gnp(40, 0.1, seed=3)
        report = distributed_bfs_setup(g, seed=1)
        assert adj.edge_count(report.tree) == len(g) - 1
        assert adj.is_connected(report.tree)
        assert set(report.tree) == set(g)

    def test_tree_is_bfs_from_root(self):
        g = gen.grid(6, 6)
        report = distributed_bfs_setup(g, seed=2)
        gd = adj.bfs_distances(g, report.root)
        td = adj.bfs_distances(report.tree, report.root)
        assert gd == td

    def test_latency_proportional_to_diameter(self):
        g = gen.grid(8, 8)
        d = metrics.diameter_exact(g)
        report = distributed_bfs_setup(g, seed=0)
        assert report.latency <= 3 * d + 4

    @pytest.mark.parametrize("n", [32, 128, 512])
    def test_messages_per_edge_logarithmic(self, n):
        """The paper's w.h.p. O(log n) messages per edge (Cohen [4])."""
        g = gen.random_connected_gnp(n, min(1.0, 8 / n), seed=n)
        report = distributed_bfs_setup(g, seed=n)
        assert report.max_messages_per_edge <= 6 * math.log2(n) + 8

    def test_single_node(self):
        report = distributed_bfs_setup({0: set()})
        assert report.root == 0
        assert report.tree == {0: set()}

    def test_rejects_disconnected(self):
        from repro.core.errors import DisconnectedGraphError

        with pytest.raises(DisconnectedGraphError):
            distributed_bfs_setup({0: set(), 1: set()})

    def test_deterministic_per_seed(self):
        g = gen.random_connected_gnp(30, 0.15, seed=4)
        a = distributed_bfs_setup(g, seed=9)
        b = distributed_bfs_setup(g, seed=9)
        assert a.root == b.root
        assert a.tree == b.tree


class TestSizeEstimate:
    @pytest.mark.parametrize("n", [64, 256, 1024])
    def test_estimate_concentrates(self, n):
        g = {i: set() for i in range(n)}
        g = gen.path(n)
        estimates = [size_estimate(g, seed=s) for s in range(5)]
        mean = sum(estimates) / len(estimates)
        assert 0.5 * n <= mean <= 2.0 * n

    def test_handles_tiny(self):
        assert size_estimate(gen.path(2), seed=1) > 0
