"""Cross-cutting integration properties of the whole stack."""

import random

import pytest

from repro import ForgivingTree
from repro.baselines import ForgivingTreeHealer
from repro.graphs import generators, metrics, spanning
from repro.graphs.adjacency import is_connected


class TestDeterminism:
    def test_engine_is_deterministic(self):
        """Same tree + same order => byte-identical healing."""
        tree = generators.random_tree(40, seed=21)
        order = sorted(tree)
        random.Random(9).shuffle(order)
        runs = []
        for _ in range(2):
            ft = ForgivingTree(tree)
            trace = []
            for victim in order:
                report = ft.delete(victim)
                trace.append((sorted(report.edges_added), sorted(ft.edges())))
            runs.append(trace)
        assert runs[0] == runs[1]

    def test_generators_are_deterministic(self):
        assert generators.random_tree(30, 5) == generators.random_tree(30, 5)
        assert generators.preferential_attachment(40, 2, 3) == (
            generators.preferential_attachment(40, 2, 3)
        )


class TestModeEquivalence:
    def test_splice_and_rebuild_share_guarantees(self):
        """Both will-maintenance modes keep identical *guarantees*; the
        image graphs may differ (rebuild re-sorts heirs) but degree,
        connectivity and the diameter envelope hold for both."""
        tree = generators.random_tree(36, seed=14)
        d0 = metrics.diameter_exact(tree)
        delta = max(len(v) for v in tree.values())
        order = sorted(tree)
        random.Random(2).shuffle(order)
        for mode in ("splice", "rebuild"):
            ft = ForgivingTree(tree, will_mode=mode, strict=True)
            for victim in order[:-1]:
                ft.delete(victim)
                assert ft.max_degree_increase() <= 3
                assert is_connected(ft.adjacency())


class TestSpanningTreeComposition:
    def test_any_spanning_tree_works(self):
        """The healer's guarantees hold for any spanning tree choice."""
        g = generators.random_connected_gnp(40, 0.12, seed=8)
        for seed in range(3):
            tree = spanning.random_spanning_tree(g, seed=seed)
            ft = ForgivingTree(tree, strict=True)
            order = sorted(tree)
            random.Random(seed).shuffle(order)
            for victim in order[:30]:
                ft.delete(victim)
                assert ft.max_degree_increase() <= 3

    def test_healer_diameter_no_worse_than_tree_overlay(self):
        """Extra (non-tree) edges can only shrink the healed diameter."""
        g = generators.random_connected_gnp(30, 0.15, seed=4)
        healer = ForgivingTreeHealer(g)
        order = sorted(g)
        random.Random(6).shuffle(order)
        for victim in order[:15]:
            healer.delete(victim)
            merged = healer.graph()
            tree_only = healer.tree_overlay()
            if len(merged) > 1 and is_connected(merged) and is_connected(tree_only):
                assert metrics.diameter_exact(merged) <= metrics.diameter_exact(
                    tree_only
                )


class TestWholePaperPipeline:
    def test_setup_then_heal_end_to_end(self):
        """The paper's full pipeline: arbitrary graph -> distributed BFS
        setup -> Forgiving Tree -> adversarial campaign -> bounds hold."""
        from repro.distributed.setup import distributed_bfs_setup
        from repro.harness import bounds

        g = generators.preferential_attachment(60, 2, seed=11)
        report = distributed_bfs_setup(g, seed=1)
        d0 = metrics.diameter_exact(g)
        delta = max(len(v) for v in g.values())
        ft = ForgivingTree(report.tree, root=report.root, strict=True)
        order = sorted(report.tree)
        random.Random(3).shuffle(order)
        for victim in order[:-1]:
            ft.delete(victim)
        assert ft.max_degree_increase() <= bounds.thm1_degree_bound()
