"""Tests for the adversary strategies."""

import pytest

from repro.adversaries import (
    ADVERSARY_CATALOG,
    CenterAdversary,
    DegreeGreedyAdversary,
    DiameterGreedyAdversary,
    FixedOrderAdversary,
    MaxDegreeAdversary,
    MinDegreeAdversary,
    RandomAdversary,
    RootAdversary,
    ScriptedAdversary,
)
from repro.baselines import ForgivingTreeHealer, LineHealer, SurrogateHealer
from repro.core.errors import ReproError, SimulationOverError
from repro.graphs import generators


def healer_on_star(n=8):
    return ForgivingTreeHealer(generators.star(n))


class TestSimpleAdversaries:
    def test_max_degree_picks_center(self):
        assert MaxDegreeAdversary().choose(healer_on_star()) == 0

    def test_min_degree_picks_leaf(self):
        assert MinDegreeAdversary().choose(healer_on_star()) != 0

    def test_center_picks_graph_center(self):
        healer = ForgivingTreeHealer(generators.path(9))
        assert CenterAdversary().choose(healer) == 4

    def test_root_picks_min_id(self):
        assert RootAdversary().choose(healer_on_star()) == 0

    def test_random_is_seeded(self):
        h = healer_on_star()
        a, b = RandomAdversary(5), RandomAdversary(5)
        assert [a.choose(h) for _ in range(5)] == [b.choose(h) for _ in range(5)]

    def test_random_reset(self):
        h = healer_on_star()
        adv = RandomAdversary(5)
        first = [adv.choose(h) for _ in range(4)]
        adv.reset()
        assert [adv.choose(h) for _ in range(4)] == first


class TestScripted:
    def test_fixed_order_skips_dead(self):
        healer = ForgivingTreeHealer(generators.star(4))
        adv = FixedOrderAdversary([3, 3, 2, 1])
        healer.delete(adv.choose(healer))  # 3
        assert adv.choose(healer) == 2  # second "3" skipped

    def test_fixed_order_exhausted(self):
        adv = FixedOrderAdversary([])
        with pytest.raises(SimulationOverError):
            adv.choose(healer_on_star())

    def test_scripted_strict(self):
        healer = ForgivingTreeHealer(generators.star(4))
        adv = ScriptedAdversary([1, 1])
        healer.delete(adv.choose(healer))
        with pytest.raises(ReproError):
            adv.choose(healer)

    def test_scripted_remaining(self):
        adv = ScriptedAdversary([1, 2, 3])
        assert adv.remaining == 3


class TestGreedy:
    def test_diameter_greedy_beats_random_on_line_healer(self):
        from repro.harness import run_campaign

        tree = generators.broom(4, 12)
        greedy = run_campaign(
            LineHealer(tree), DiameterGreedyAdversary(), rounds=8
        )
        rand = run_campaign(LineHealer(tree), RandomAdversary(0), rounds=8)
        assert greedy.peak_diameter >= rand.peak_diameter

    def test_degree_greedy_finds_surrogate_weakness(self):
        healer = SurrogateHealer(generators.star(10))
        adv = DegreeGreedyAdversary()
        victim = adv.choose(healer)
        healer.delete(victim)
        assert healer.max_degree_increase() >= 7

    def test_candidate_thinning(self):
        adv = DiameterGreedyAdversary(max_candidates=3)
        healer = ForgivingTreeHealer(generators.path(20))
        assert adv.choose(healer) in healer.alive


class TestCatalog:
    def test_catalog_names(self):
        assert set(ADVERSARY_CATALOG) == {
            "random",
            "max-degree",
            "min-degree",
            "center",
            "root",
            "surrogate-killer",
            "diameter-greedy",
            "degree-greedy",
        }

    @pytest.mark.parametrize("name", sorted(ADVERSARY_CATALOG))
    def test_every_adversary_runs_a_campaign(self, name):
        from repro.harness import run_campaign

        cls = ADVERSARY_CATALOG[name]
        adv = cls()
        healer = ForgivingTreeHealer(generators.random_tree(12, 3))
        result = run_campaign(healer, adv, rounds=8, measure_diameter=False)
        assert result.peak_degree_increase <= 3
        assert len(result.rounds) == 8
