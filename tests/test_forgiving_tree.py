"""Behavioral tests of the sequential Forgiving Tree engine."""

import random

import pytest

from tests.conftest import run_full_campaign
from repro import ForgivingTree
from repro.core.errors import (
    NodeNotFoundError,
    NotATreeError,
    SimulationOverError,
)
from repro.core.events import HelperCreated, HelperTransferred, LeafWillSent, WillPortionSent
from repro.core.state import HelperState
from repro.graphs import generators


class TestConstruction:
    def test_accepts_adjacency(self):
        ft = ForgivingTree({0: [1, 2]})
        assert ft.alive == {0, 1, 2}

    def test_accepts_edge_list(self):
        ft = ForgivingTree([(0, 1), (1, 2)])
        assert ft.alive == {0, 1, 2}

    def test_accepts_networkx(self):
        import networkx as nx

        g = nx.path_graph(4)
        ft = ForgivingTree(g)
        assert ft.alive == {0, 1, 2, 3}

    def test_rejects_cycle(self):
        with pytest.raises(NotATreeError):
            ForgivingTree([(0, 1), (1, 2), (2, 0)])

    def test_rejects_forest(self):
        with pytest.raises(NotATreeError):
            ForgivingTree({0: [1], 2: [3]})

    def test_rejects_empty(self):
        with pytest.raises(NotATreeError):
            ForgivingTree({})

    def test_rejects_unknown_root(self):
        with pytest.raises(NodeNotFoundError):
            ForgivingTree({0: [1]}, root=9)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            ForgivingTree({0: [1]}, will_mode="nope")


class TestStarDeletion:
    def test_center_death_builds_rt(self):
        ft = ForgivingTree({0: [1, 2, 3, 4]}, strict=True)
        report = ft.delete(0)
        assert report.was_internal
        # RT over {1,2,3,4}: heir 4 ready heir; root helper keyed 2.
        assert ft.edges() == {(1, 2), (2, 3), (2, 4), (3, 4)}
        assert ft.max_degree_increase() <= 3
        assert ft.state_of(4).state is HelperState.READY
        assert ft.state_of(2).state is HelperState.DEPLOYED

    def test_leaf_death_updates_will(self):
        ft = ForgivingTree({0: [1, 2, 3, 4]}, strict=True)
        report = ft.delete(3)
        assert not report.was_internal
        assert ft.edges() == {(0, 1), (0, 2), (0, 4)}
        assert ft.will_of(0).stand_ins == [1, 2, 4]

    def test_heir_leaf_death_moves_heirship(self):
        ft = ForgivingTree({0: [1, 2, 3, 4]}, strict=True)
        assert ft.heir_of(0) == 4
        ft.delete(4)
        # Paper rule: the child whose helper dropped from 3 to 2 inherits.
        assert ft.heir_of(0) == 3


class TestFullCampaigns:
    @pytest.mark.parametrize("family", ["star", "path", "random", "binary", "broom"])
    def test_every_family_survives_random_order(self, family):
        tree = generators.TREE_FAMILIES[family](40, 5)
        ft = run_full_campaign(tree, seed=11)
        assert len(ft) == 0

    def test_degree_never_exceeds_plus_three(self):
        import random

        tree = generators.random_tree(60, seed=3)
        ft = ForgivingTree(tree, strict=True)
        order = sorted(tree)
        random.Random(1).shuffle(order)
        for nid in order:
            ft.delete(nid)
            assert ft.max_degree_increase() <= 3

    def test_rebuild_mode_matches_splice_guarantees(self):
        tree = generators.random_tree(40, seed=9)
        ft = run_full_campaign(tree, seed=2, will_mode="rebuild")
        assert len(ft) == 0


class TestReports:
    def test_report_describes(self):
        ft = ForgivingTree({0: [1, 2]})
        report = ft.delete(0)
        text = report.describe()
        assert "deleted 0" in text

    def test_events_present(self):
        ft = ForgivingTree({0: [1, 2, 3]})
        report = ft.delete(0)
        kinds = {type(e) for e in report.events}
        assert HelperCreated in kinds

    def test_leaf_will_event_on_new_leaf(self):
        # 0-1-2 path: killing 2 makes 1 a leaf; if 1 has duties it deposits.
        ft = ForgivingTree(generators.path(4), strict=True)
        ft.delete(0)
        report = ft.delete(1)
        assert isinstance(report.messages_per_node, dict)

    def test_will_portion_events_on_slot_change(self):
        ft = ForgivingTree({0: [1, 2, 3, 4]}, strict=True)
        report = ft.delete(3)
        assert any(isinstance(e, WillPortionSent) for e in report.events)

    def test_messages_bounded_per_node(self):
        import random

        tree = generators.random_tree(80, seed=5)
        ft = ForgivingTree(tree)
        order = sorted(tree)
        random.Random(3).shuffle(order)
        worst = 0
        for nid in order:
            report = ft.delete(nid)
            worst = max(worst, report.max_messages_per_node)
        assert worst <= 12  # O(1): independent of n (see benchmarks)


class TestErrors:
    def test_delete_twice(self):
        ft = ForgivingTree({0: [1]})
        ft.delete(0)
        with pytest.raises(NodeNotFoundError):
            ft.delete(0)

    def test_delete_after_empty(self):
        ft = ForgivingTree({0: [1]})
        ft.delete(0)
        ft.delete(1)
        with pytest.raises(SimulationOverError):
            ft.delete(1)

    def test_state_of_dead(self):
        ft = ForgivingTree({0: [1]})
        ft.delete(1)
        with pytest.raises(NodeNotFoundError):
            ft.state_of(1)


class TestRootDeletion:
    def test_root_death_promotes_ready_heir_to_root(self):
        ft = ForgivingTree({0: [1, 2]}, strict=True)
        ft.delete(0)
        # heir 2 simulates the new virtual root (ready heir).
        assert ft.state_of(2).state is HelperState.READY
        assert ft.edges() == {(1, 2)}

    def test_delete_down_to_one(self):
        ft = ForgivingTree(generators.path(5), strict=True)
        for nid in [0, 4, 2, 1]:
            ft.delete(nid)
        assert ft.alive == {3}
        assert ft.edges() == set()

    def test_delete_everything(self):
        ft = ForgivingTree(generators.path(5), strict=True)
        for nid in [2, 0, 4, 3, 1]:
            ft.delete(nid)
        assert len(ft) == 0


class TestHeirTransfer:
    def test_heir_inherits_helper_role(self):
        """Killing a node that already simulates a helper transfers it."""
        ft = ForgivingTree({0: [1, 2, 3, 4], 2: [5, 6]}, strict=True)
        ft.delete(0)  # 2 now simulates the RT root helper
        assert ft.state_of(2).state is HelperState.DEPLOYED
        report = ft.delete(2)  # heir 6 must take over 2's helper
        transfers = [e for e in report.events if isinstance(e, HelperTransferred)]
        assert any(t.new_sim == 6 for t in transfers)
        assert ft.state_of(6).is_helper


class TestGeneralizedEndgameRegressions:
    """Full strict campaigns that historically crashed the b > 2 endgame.

    Each instance is a Hypothesis falsifying example (or a soak find)
    pinned verbatim: (1) spurious donor exhaustion from the stale
    stand-in of a slot dissolved in the same round, (2) a doomed
    all-virtual chain below a dying leaf's role that must dissolve
    rather than be inherited, (3) the SubRT root snapshot going stale
    when donor stealing replaces a one-child anchor mid-deployment
    (re-attaching a destroyed helper).
    """

    @pytest.mark.parametrize(
        "n,tree_seed,order_seed,branching,will_mode",
        [
            (23, 175741, 5108, 3, "splice"),  # stale-will donor exhaustion
            (33, 270189, 1, 3, "splice"),  # doomed virtual chain below the role
            (22, 7087, 54, 3, "splice"),  # stale SubRT root after anchor steal
            (22, 7087, 54, 4, "splice"),
            (26, 16519, 126, 3, "splice"),
            # Rebuild-mode donor exhaustion: the planned stand-in was stuck
            # simulating the redundant one-child helper directly above the
            # dying node; only bypassing that helper can free it.
            (29, 901259, 807541, 3, "rebuild"),
        ],
    )
    def test_full_campaign_completes(
        self, n, tree_seed, order_seed, branching, will_mode
    ):
        tree = generators.random_tree(n, tree_seed)
        ft = ForgivingTree(
            tree, strict=True, branching=branching, will_mode=will_mode
        )
        order = sorted(tree)
        random.Random(order_seed).shuffle(order)
        for nid in order:
            ft.delete(nid)
        assert len(ft) == 0
