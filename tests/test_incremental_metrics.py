"""Test wall for the incremental diameter engine and batch insert waves.

Cross-validates :class:`~repro.graphs.incremental.DynamicTreeMetrics`
against ``diameter_exact`` after **every** event of randomized churn
traces (well over 25 fixed seeds), property-fuzzes it with Hypothesis,
and pins down the batch-insert equivalence: ``insert_batch`` must produce
a structure identical to the same inserts applied sequentially.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import ForgivingTree
from repro.adversaries import RandomChurnAdversary, WaveChurnAdversary
from repro.baselines import (
    BinaryTreeHealer,
    ForgivingTreeHealer,
    LineHealer,
    NoRepairHealer,
    SurrogateHealer,
)
from repro.churn import Insert
from repro.core.errors import (
    DuplicateNodeError,
    EmptyStructureError,
    NodeNotFoundError,
    NotATreeError,
)
from repro.graphs import generators
from repro.graphs.incremental import DynamicTreeMetrics
from repro.graphs.metrics import diameter_exact
from repro.harness import run_churn_campaign


class TestDynamicTreeMetricsBasics:
    def test_matches_exact_on_fixed_families(self):
        for graph in (
            generators.path(1),
            generators.path(2),
            generators.path(17),
            generators.star(9),
            generators.balanced_tree(2, 4),
            generators.random_tree(40, seed=3),
        ):
            assert DynamicTreeMetrics(graph).diameter == diameter_exact(graph)

    def test_empty_and_singleton(self):
        dtm = DynamicTreeMetrics({})
        assert len(dtm) == 0
        with pytest.raises(EmptyStructureError):
            dtm.diameter
        dtm = DynamicTreeMetrics({5: set()})
        assert dtm.diameter == 0 and 5 in dtm

    def test_rejects_disconnected(self):
        with pytest.raises(NotATreeError):
            DynamicTreeMetrics({0: {1}, 1: {0}, 2: set()})

    def test_cyclic_input_tracks_chords(self):
        dtm = DynamicTreeMetrics(generators.cycle(6))
        assert dtm.n_chords == 1 and not dtm.is_exact
        assert dtm.diameter >= diameter_exact(generators.cycle(6))

    def test_insert_leaf_updates_exactly(self):
        graph = generators.random_tree(12, seed=1)
        dtm = DynamicTreeMetrics(graph)
        current = {k: set(v) for k, v in graph.items()}
        for i, attach in enumerate([0, 3, 100, 101, 5]):
            nid = 100 + i if attach != 100 else 200
            dtm.insert_leaf(nid, attach)
            current[nid] = {attach}
            current[attach].add(nid)
            assert dtm.diameter == diameter_exact(current)
            dtm.check()

    def test_insert_leaf_errors(self):
        dtm = DynamicTreeMetrics(generators.path(3))
        with pytest.raises(DuplicateNodeError):
            dtm.insert_leaf(1, 0)
        with pytest.raises(NodeNotFoundError):
            dtm.insert_leaf(9, 77)

    def test_empties_and_regrows(self):
        dtm = DynamicTreeMetrics({0: {1}, 1: {0}})
        dtm.apply_delete(1, added=(), removed=((0, 1),))
        assert dtm.diameter == 0
        dtm.apply_delete(0, added=(), removed=())
        assert len(dtm) == 0
        dtm.check()
        dtm.insert_leaf(7, 7)  # first node of a re-growing network
        assert dtm.diameter == 0 and dtm.root == 7
        dtm.insert_leaf(8, 7)
        assert dtm.diameter == 1
        dtm.check()

    def test_delete_victim_not_found(self):
        dtm = DynamicTreeMetrics(generators.path(3))
        with pytest.raises(NodeNotFoundError):
            dtm.apply_delete(42, added=(), removed=())

    def test_disconnection_raises(self):
        dtm = DynamicTreeMetrics(generators.path(4))
        with pytest.raises(NotATreeError):
            # deleting interior node 1 with no heal edge splits the path
            dtm.apply_delete(1, added=(), removed=((0, 1), (1, 2)))


def _tree_preserving_trace(healer_cls, n0, seed, events=70, p_insert=0.45):
    """Drive a tree-preserving healer under random churn, cross-validating
    the incremental diameter against ``diameter_exact`` after every event."""
    tree = generators.random_tree(n0, seed=seed)
    healer = healer_cls({k: set(v) for k, v in tree.items()})
    tracker = DynamicTreeMetrics(tree)
    adversary = RandomChurnAdversary(p_insert=p_insert, seed=seed)
    adversary.reset()
    for _ in range(events):
        event = adversary.next_event(healer)
        if isinstance(event, Insert):
            report = healer.insert(event.nid, event.attach_to)
        else:
            report = healer.delete(event.nid)
        tracker.apply_report(report)
        graph = healer.graph()
        assert tracker.is_exact, "tree-preserving heal produced a chord"
        assert tracker.diameter == diameter_exact(graph)
        assert len(tracker) == len(graph)


class TestChurnTraceCrossValidation:
    """The wall: >= 25 seeded churn traces, every event cross-validated."""

    @pytest.mark.parametrize("seed", range(13))
    def test_line_healer_traces_match_exact(self, seed):
        _tree_preserving_trace(LineHealer, 12 + seed % 20, seed)

    @pytest.mark.parametrize("seed", range(13))
    def test_binary_tree_healer_traces_match_exact(self, seed):
        _tree_preserving_trace(BinaryTreeHealer, 10 + seed % 25, seed + 100)

    @pytest.mark.parametrize("seed", range(13))
    def test_surrogate_healer_traces_match_exact(self, seed):
        _tree_preserving_trace(SurrogateHealer, 10 + seed % 25, seed + 200)

    @pytest.mark.parametrize("seed", range(13))
    def test_forgiving_tree_traces_bracket_exact(self, seed):
        """On the Forgiving Tree's image (which keeps short heal chords)
        the tracker mirrors the adjacency edge-for-edge, its aggregates
        survive a from-scratch recheck after every event, and its value
        equals ``diameter_exact`` exactly whenever the image is a tree —
        bracketing it from above (within the chord slack) otherwise."""
        rng = random.Random(seed)
        tree = generators.random_tree(5 + seed % 30, seed=seed)
        ft = ForgivingTree(tree)
        tracker = DynamicTreeMetrics(tree)
        nxt = 10_000
        for _ in range(70):
            alive = sorted(ft.alive)
            if len(alive) <= 1 or rng.random() < 0.45:
                report = ft.insert(nxt, rng.choice(alive))
                nxt += 1
            else:
                report = ft.delete(rng.choice(alive))
            tracker.apply_report(report)
            tracker.check()  # incremental aggregates == from-scratch BFS
            image = ft.adjacency()
            assert {k: set(v) for k, v in image.items()} == tracker._adj
            if len(image) > 1:
                d_exact = diameter_exact(image)
                if tracker.is_exact:
                    assert tracker.diameter == d_exact
                else:
                    assert d_exact <= tracker.diameter <= d_exact + 2 * tracker.n_chords


class TestHypothesisProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        script=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=10**6)),
            min_size=1,
            max_size=50,
        ),
    )
    def test_any_interleaving_matches_exact_on_line_healer(self, seed, script):
        tree = generators.random_tree(2 + seed % 14, seed=seed)
        healer = LineHealer({k: set(v) for k, v in tree.items()})
        tracker = DynamicTreeMetrics(tree)
        nxt = 10_000
        for is_insert, pick in script:
            alive = sorted(healer.alive)
            if len(alive) <= 1:
                is_insert = True
            target = alive[pick % len(alive)]
            if is_insert:
                report = healer.insert(nxt, target)
                nxt += 1
            else:
                report = healer.delete(target)
            tracker.apply_report(report)
            tracker.check()
            assert tracker.diameter == diameter_exact(healer.graph())

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        script=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=10**6)),
            min_size=1,
            max_size=40,
        ),
    )
    def test_any_interleaving_brackets_exact_on_forgiving_tree(self, seed, script):
        tree = generators.random_tree(2 + seed % 12, seed=seed)
        ft = ForgivingTree(tree)
        tracker = DynamicTreeMetrics(tree)
        nxt = 10_000
        for is_insert, pick in script:
            alive = sorted(ft.alive)
            if len(alive) <= 1:
                is_insert = True
            target = alive[pick % len(alive)]
            if is_insert:
                report = ft.insert(nxt, target)
                nxt += 1
            else:
                report = ft.delete(target)
            tracker.apply_report(report)
            tracker.check()
            image = ft.adjacency()
            assert {k: set(v) for k, v in image.items()} == tracker._adj
            if len(image) > 1 and tracker.is_exact:
                assert tracker.diameter == diameter_exact(image)


def _wave_script(seed, n_waves=8, max_wave=6):
    """Random (wave, deletions) interleavings with deterministic ids."""
    rng = random.Random(seed)
    return rng, [rng.randint(1, max_wave) for _ in range(n_waves)]


class TestInsertBatchIsomorphism:
    @pytest.mark.parametrize("seed", range(10))
    def test_batch_identical_to_sequential(self, seed):
        """``insert_batch`` must yield a structure *identical* to the same
        inserts applied one by one: image edges, wills, heirs, baselines."""
        rng, waves = _wave_script(seed)
        tree = generators.random_tree(4 + seed % 12, seed=seed)
        batched = ForgivingTree(tree, strict=True)
        sequential = ForgivingTree(tree, strict=True)
        nxt = 1000
        for size in waves:
            alive = sorted(batched.alive)
            wave = []
            for _ in range(size):
                wave.append((nxt, rng.choice(alive)))
                nxt += 1
            batched.insert_batch(wave)
            for nid, attach_to in wave:
                sequential.insert(nid, attach_to)
            victim = rng.choice(sorted(batched.alive))
            if len(batched) > 1:
                batched.delete(victim)
                sequential.delete(victim)
            assert batched.edges() == sequential.edges()
            assert batched.alive == sequential.alive
            assert batched.original_degree == sequential.original_degree
            for nid in batched.alive:
                assert (
                    batched.will_of(nid).as_shape()
                    == sequential.will_of(nid).as_shape()
                )
                assert batched.heir_of(nid) == sequential.heir_of(nid)

    def test_wave_amortizes_portion_traffic(self):
        """The point of batching: portions retransmit once per touched
        stand-in per wave, so a k-wave at one attachment point costs
        strictly fewer portion messages than k sequential inserts."""
        from repro.core.events import WillPortionSent

        tree = {0: [1, 2], 1: [3, 4]}
        wave = [(100 + i, 1) for i in range(6)]
        batched = ForgivingTree(tree)
        report = batched.insert_batch(wave)
        batch_portions = sum(
            1 for e in report.events if isinstance(e, WillPortionSent)
        )
        sequential = ForgivingTree(tree)
        seq_portions = 0
        for nid, attach_to in wave:
            r = sequential.insert(nid, attach_to)
            seq_portions += sum(
                1 for e in r.events if isinstance(e, WillPortionSent)
            )
        assert batched.edges() == sequential.edges()
        assert batch_portions < seq_portions

    def test_batch_validation_errors(self):
        ft = ForgivingTree({0: [1, 2]})
        with pytest.raises(ValueError):
            ft.insert_batch([])
        with pytest.raises(DuplicateNodeError):
            ft.insert_batch([(5, 0), (5, 1)])
        with pytest.raises(DuplicateNodeError):
            ft.insert_batch([(1, 0)])  # id 1 already exists
        with pytest.raises(NodeNotFoundError):
            ft.insert_batch([(5, 0), (6, 5)])  # attach to same-wave joiner
        with pytest.raises(NodeNotFoundError):
            ft.insert_batch([(5, 99)])
        # failed validation must not have mutated anything
        assert ft.alive == {0, 1, 2}
        ft.check()


class TestHarnessIncrementalMode:
    def test_incremental_campaign_matches_exact_per_round(self):
        tree = generators.random_tree(35, seed=4)
        healer = LineHealer({k: set(v) for k, v in tree.items()})
        mismatches = []

        def observe(rec, h):
            if rec.diameter is not None:
                if rec.diameter != diameter_exact(h.graph()):
                    mismatches.append(rec.round)

        result = run_churn_campaign(
            healer,
            RandomChurnAdversary(p_insert=0.5, seed=4),
            events=80,
            metrics="incremental",
            on_round=observe,
        )
        assert len(result.rounds) == 80 and not mismatches
        assert all(
            r.stretch == r.diameter / result.initial_diameter
            for r in result.rounds
            if r.diameter is not None
        )

    def test_wave_adversary_through_harness(self):
        tree = generators.random_tree(30, seed=2)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        result = run_churn_campaign(
            healer,
            WaveChurnAdversary(wave=5, p_wave=0.4, seed=2),
            events=60,
            metrics="incremental",
        )
        waves = [r for r in result.rounds if r.wave_size > 1]
        assert waves and all(r.event == "insert" for r in waves)
        assert result.stayed_connected
        assert result.peak_degree_increase <= 3
        assert result.net_growth > 0

    def test_auto_mode_degrades_on_disconnection(self):
        tree = generators.random_tree(20, seed=1)
        healer = NoRepairHealer({k: set(v) for k, v in tree.items()})
        result = run_churn_campaign(
            healer, RandomChurnAdversary(p_insert=0.2, seed=9), events=30
        )
        assert len(result.rounds) == 30
        assert not result.stayed_connected  # no-repair fragments the tree

    def test_incremental_mode_rejects_cyclic_start(self):
        graph = generators.random_connected_gnp(20, 0.3, seed=1)
        healer = SurrogateHealer({k: set(v) for k, v in graph.items()})
        with pytest.raises(NotATreeError):
            run_churn_campaign(
                healer,
                RandomChurnAdversary(seed=1),
                events=5,
                metrics="incremental",
            )

    def test_campaign_seed_reproducibility(self):
        tree = generators.random_tree(25, seed=6)

        def run():
            healer = SurrogateHealer(
                {k: set(v) for k, v in generators.random_connected_gnp(25, 0.15, seed=6).items()}
            )
            result = run_churn_campaign(
                healer,
                RandomChurnAdversary(p_insert=0.4, seed=6),
                events=40,
                metrics="double-sweep",
                seed=123,
            )
            return result.series("diameter")

        assert run() == run()


class TestGeneralizedCascadeRegression:
    def test_donor_steal_of_cascade_target(self):
        """Hypothesis-found endgame (tree_seed=605, order_seed=2259,
        branching=3): the leaf-will donor search splices the deferred
        cascade target; the cascade must then not touch the destroyed
        helper (double-destroy KeyError before the fix)."""
        tree = generators.random_tree(35, 605)
        ft = ForgivingTree(tree, strict=True, branching=3)
        order = sorted(tree)
        random.Random(2259).shuffle(order)
        for nid in order:
            ft.delete(nid)
        assert len(ft) == 0

    def test_role_emptied_by_parent_collapse_vanishes(self):
        """Hypothesis-found endgame (tree_seed=0, order_seed=0, n=42,
        branching=3): a dying leaf's non-adjacent role loses its only
        child when the parent helper dissolves; the now-childless role
        must vanish instead of hunting a donor to inherit nothing
        (donor exhaustion before the fix)."""
        tree = generators.random_tree(42, 0)
        ft = ForgivingTree(tree, strict=True, branching=3)
        order = sorted(tree)
        random.Random(0).shuffle(order)
        for nid in order:
            ft.delete(nid)
        assert len(ft) == 0


class TestOddToggleRawEventReplay:
    """The ROADMAP-flagged under-reporting: the report's summary sets
    are disjointified, so an edge toggling an odd number of times inside
    one FT heal (removed, re-added, removed) vanishes from both sets —
    ``apply_report`` must consume the raw chronological net deltas
    (``HealReport.net_edge_deltas``) instead, as the transport mirror
    already does."""

    # The observed case: n=300, random_tree seed 42, RandomChurn seed 7
    # (p_insert=0.3) — event 49 removes, re-adds and removes again the
    # edge (38, 226), which then appears in neither summary set.
    N, TREE_SEED, ADV_SEED, P_INSERT = 300, 42, 7, 0.3
    TOGGLE_EVENT, TOGGLE_EDGE = 49, (38, 226)

    def _reports(self, events):
        from repro.baselines import ForgivingTreeHealer

        tree = generators.random_tree(self.N, seed=self.TREE_SEED)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        adversary = RandomChurnAdversary(p_insert=self.P_INSERT, seed=self.ADV_SEED)
        adversary.reset()
        for _ in range(events):
            event = adversary.next_event(healer)
            if isinstance(event, Insert):
                yield healer, healer.insert(event.nid, event.attach_to)
            else:
                yield healer, healer.delete(event.nid)

    def test_observed_toggle_case_is_pinned(self):
        """The campaign really produces the odd toggle the ROADMAP
        recorded: summary sets miss the edge, the raw replay nets it."""
        for t, (healer, report) in enumerate(self._reports(self.TOGGLE_EVENT + 1)):
            pass
        assert t == self.TOGGLE_EVENT
        key = self.TOGGLE_EDGE
        ops = [
            type(e).__name__[4]  # 'A'dded / 'R'emoved
            for e in report.events
            if type(e).__name__ in ("EdgeAdded", "EdgeRemoved") and e.key() == key
        ]
        assert ops == ["R", "A", "R"]  # the odd toggle
        assert key not in report.edges_added
        assert key not in report.edges_removed  # vanished from the summary
        added, removed = report.net_edge_deltas()
        assert key in removed and key not in added  # recovered by raw replay

    def test_tracker_stays_exact_through_the_toggle(self):
        """Feeding raw net deltas, the maintained overlay matches the
        healer's graph edge-for-edge across the whole pinned campaign."""
        tree = generators.random_tree(self.N, seed=self.TREE_SEED)
        from repro.baselines import ForgivingTreeHealer

        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        tracker = DynamicTreeMetrics(healer.graph())
        adversary = RandomChurnAdversary(p_insert=self.P_INSERT, seed=self.ADV_SEED)
        adversary.reset()
        for t in range(60):
            event = adversary.next_event(healer)
            if isinstance(event, Insert):
                report = healer.insert(event.nid, event.attach_to)
            else:
                report = healer.delete(event.nid)
            tracker.apply_report(report)
            tracked = {
                (u, v) for u, s in tracker._adj.items() for v in s if u < v
            }
            actual = {
                (u, v) for u, s in healer.graph().items() for v in s if u < v
            }
            assert tracked == actual, f"divergence at event {t}"
            tracker.check()

    def test_synthetic_non_victim_incident_toggle(self):
        """A toggle *not* incident to the victim cannot be rescued by
        ``apply_delete``'s victim-edge normalization: the summary-set
        feed leaves a phantom edge (absorbed as a chord), the raw-event
        replay stays exact."""
        from repro.core.events import EdgeAdded, EdgeRemoved, HealReport

        graph = {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
        events = (
            EdgeRemoved(2, 3),  # the victim's edge
            EdgeRemoved(1, 2),  # the odd toggle: R...
            EdgeAdded(1, 2),    # ...A...
            EdgeRemoved(1, 2),  # ...R -> net removed, summary-invisible
            EdgeAdded(0, 2),    # re-attach 2 under 0
        )
        added = frozenset(
            e.key() for e in events if isinstance(e, EdgeAdded)
        )
        removed = frozenset(
            e.key() for e in events if isinstance(e, EdgeRemoved)
        )
        report = HealReport(
            deleted=3,
            edges_added=added - removed,   # disjointified, as engines do
            edges_removed=removed - added,
            events=events,
        )
        assert (1, 2) not in report.edges_added
        assert (1, 2) not in report.edges_removed
        net_added, net_removed = report.net_edge_deltas()
        assert net_added == {(0, 2)}
        assert net_removed == {(1, 2), (2, 3)}

        # the fixed path: exact tree, no phantom
        fixed = DynamicTreeMetrics({k: set(v) for k, v in graph.items()})
        fixed.apply_report(report)
        assert {(u, v) for u, s in fixed._adj.items() for v in s if u < v} == {
            (0, 1), (0, 2)
        }
        assert fixed.is_exact and fixed.diameter == 2
        fixed.check()

        # the old summary-set feed: the phantom (1, 2) survives as a chord
        legacy = DynamicTreeMetrics({k: set(v) for k, v in graph.items()})
        legacy.apply_delete(3, report.edges_added, report.edges_removed)
        legacy_edges = {
            (u, v) for u, s in legacy._adj.items() for v in s if u < v
        }
        assert (1, 2) in legacy_edges  # the under-report, demonstrated
        assert not legacy.is_exact and legacy.n_chords == 1

    def test_net_edge_deltas_units(self):
        from repro.core.events import EdgeAdded, EdgeRemoved, HealReport

        report = HealReport(
            deleted=9,
            edges_added=frozenset({(7, 8)}),  # summary-only entry (no event)
            edges_removed=frozenset({(5, 6)}),
            events=(
                EdgeAdded(1, 2), EdgeRemoved(1, 2),   # transient: no net
                EdgeRemoved(3, 4), EdgeAdded(3, 4),   # removed+restored: no net
                EdgeAdded(2, 9), EdgeRemoved(2, 9), EdgeAdded(2, 9),  # A..A
            ),
        )
        added, removed = report.net_edge_deltas()
        assert added == {(2, 9), (7, 8)}
        assert removed == {(5, 6)}
