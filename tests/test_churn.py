"""Tests for the churn subsystem: insertions, mixed campaigns, adversaries,
trace replay, and the sequential/distributed cross-check under churn."""

import random

import pytest

from repro import ForgivingTree
from repro.adversaries import (
    DeletionOnlyChurnAdversary,
    GrowthThenMassacreAdversary,
    MaxDegreeAdversary,
    OscillatingChurnAdversary,
    RandomChurnAdversary,
    TraceReplayAdversary,
    WaveChurnAdversary,
)
from repro.baselines import (
    BinaryTreeHealer,
    ForgivingTreeHealer,
    LineHealer,
    NoRepairHealer,
    SurrogateHealer,
)
from repro.churn import ChurnTrace, Delete, Insert, InsertWave, synthetic_skype_outage
from repro.core.errors import (
    DuplicateNodeError,
    NodeNotFoundError,
    ReproError,
    SimulationOverError,
)
from repro.core.events import LeafWillSent, NodeInserted, WillPortionSent
from repro.core.invariants import check_full
from repro.core.slot_tree import SlotTree
from repro.distributed import DistributedForgivingTree
from repro.graphs import generators
from repro.graphs.adjacency import is_connected
from repro.harness import churn_duel, run_churn_campaign


class TestSlotTreeAdd:
    def test_add_to_empty_becomes_heir(self):
        st = SlotTree([])
        delta = st.add(7)
        assert delta.became_heir
        assert st.heir == 7
        assert st.stand_ins == [7]
        st.check()

    def test_add_pairs_with_existing_leaf(self):
        st = SlotTree([3])
        delta = st.add(9)
        # The new stand-in simulates the fresh internal position itself.
        assert delta.paired_with == 3
        assert st.heir == 3  # heir-ness does not move
        assert st.has_internal(9)
        assert sorted(st.stand_ins) == [3, 9]
        st.check()

    def test_add_rejects_duplicate(self):
        st = SlotTree([1, 2])
        with pytest.raises(DuplicateNodeError):
            st.add(1)

    def test_touched_delta_is_constant(self):
        st = SlotTree(list(range(32)))
        delta = st.add(99)
        assert len(delta.touched) <= 4

    def test_depth_stays_logarithmic_under_growth(self):
        import math

        st = SlotTree([0, 1])
        for i in range(2, 130):
            st.add(i)
            st.check()
        assert st.depth() <= math.ceil(math.log2(len(st))) + 1

    def test_interleaved_add_remove_keeps_invariants(self):
        rng = random.Random(5)
        st = SlotTree([0, 1, 2, 3])
        nxt = 4
        for _ in range(200):
            if len(st) <= 1 or rng.random() < 0.55:
                st.add(nxt)
                nxt += 1
            else:
                st.remove(rng.choice(st.stand_ins))
            st.check()

    def test_generalized_branching_uses_spare_arity(self):
        st = SlotTree([1, 2, 3], branching=3)
        # root internal has 3 children; adding pairs at a shallowest leaf
        st.add(10)
        st.check()
        st2 = SlotTree([1, 2], branching=3)
        # root internal has 2 < 3 children: the new leaf fills the slot
        delta = st2.add(10)
        assert delta.paired_with is None
        assert not st2.has_internal(10)
        st2.check()


class TestForgivingTreeInsert:
    def test_insert_adds_leaf_edge(self):
        ft = ForgivingTree({0: [1, 2]}, strict=True)
        report = ft.insert(5, 1)
        assert report.is_insertion
        assert report.inserted == 5 and report.attached_to == 1
        assert (1, 5) in ft.edges()
        assert ft.degree(5) == 1
        assert 5 in ft.alive

    def test_insert_report_events(self):
        ft = ForgivingTree({0: [1]}, strict=True)
        report = ft.insert(2, 1)
        kinds = [type(e) for e in report.events]
        assert kinds[0] is NodeInserted
        assert WillPortionSent in kinds and LeafWillSent in kinds
        assert "inserted 2" in report.describe()

    def test_insert_updates_baseline_degrees(self):
        """The ideal-graph convention: demanded edges are not 'increase'."""
        ft = ForgivingTree({0: [1, 2]}, strict=True)
        for i, nid in enumerate(range(10, 18)):
            ft.insert(nid, 0)
            assert ft.degree_increase(0) == 0
            assert ft.degree_increase(nid) == 0
        assert ft.max_degree_increase() == 0

    def test_insert_rejects_reused_id_even_after_death(self):
        ft = ForgivingTree({0: [1, 2]}, strict=True)
        ft.delete(1)
        with pytest.raises(DuplicateNodeError):
            ft.insert(1, 0)
        with pytest.raises(DuplicateNodeError):
            ft.insert(0, 2)

    def test_insert_rejects_dead_attachment(self):
        ft = ForgivingTree({0: [1, 2]}, strict=True)
        ft.delete(2)
        with pytest.raises(NodeNotFoundError):
            ft.insert(9, 2)

    def test_insert_then_delete_round_trips(self):
        ft = ForgivingTree({0: [1, 2]}, strict=True)
        before = ft.edges()
        ft.insert(7, 2)
        ft.delete(7)
        assert ft.edges() == before

    def test_inserted_node_participates_in_healing(self):
        ft = ForgivingTree({0: [1, 2]}, strict=True)
        ft.insert(7, 1)
        ft.insert(8, 1)
        ft.delete(1)  # the internal attachment point dies
        assert is_connected(ft.adjacency())
        assert ft.max_degree_increase() <= 3

    def test_insert_onto_single_node(self):
        ft = ForgivingTree({0: [1]}, strict=True)
        ft.delete(1)
        ft.insert(5, 0)
        assert ft.edges() == {(0, 5)}

    def test_mixed_churn_keeps_all_invariants(self):
        rng = random.Random(11)
        ft = ForgivingTree(generators.random_tree(20, seed=11), strict=True)
        nxt = 100
        for _ in range(150):
            alive = sorted(ft.alive)
            if len(alive) <= 1 or rng.random() < 0.5:
                ft.insert(nxt, rng.choice(alive))
                nxt += 1
            else:
                ft.delete(rng.choice(alive))
            if len(ft) > 1:
                check_full(ft)
            assert ft.max_degree_increase() <= 3


class TestBaselineInserts:
    @pytest.mark.parametrize(
        "factory",
        [ForgivingTreeHealer, SurrogateHealer, LineHealer, BinaryTreeHealer, NoRepairHealer],
    )
    def test_every_healer_accepts_insertions(self, factory):
        healer = factory({0: {1, 2}, 1: {0}, 2: {0}})
        report = healer.insert(9, 0)
        assert report.is_insertion
        assert 9 in healer.alive
        assert healer.degree_increase(9) == 0
        assert healer.degree_increase(0) == 0
        with pytest.raises(DuplicateNodeError):
            healer.insert(9, 0)
        with pytest.raises(NodeNotFoundError):
            healer.insert(10, 77)


class TestChurnAdversaries:
    def _healer(self, n=20, seed=3):
        return ForgivingTreeHealer(
            {k: set(v) for k, v in generators.random_tree(n, seed=seed).items()}
        )

    def test_random_churn_emits_fresh_ids(self):
        adv = RandomChurnAdversary(p_insert=1.0, seed=0)
        healer = self._healer()
        seen = set(healer.alive)
        for _ in range(30):
            event = adv.next_event(healer)
            assert isinstance(event, Insert)
            assert event.nid not in seen
            assert event.attach_to in healer.alive
            seen.add(event.nid)
            healer.insert(event.nid, event.attach_to)

    def test_fresh_ids_skip_dead_max_id(self):
        """Regression: deleting the highest-id node before the first
        insert must not make the adversary re-issue that id."""
        healer = self._healer(n=10, seed=1)
        adv = RandomChurnAdversary(p_insert=1.0, seed=0)
        top = max(healer.alive)
        healer.delete(top)
        event = adv.next_event(healer)
        assert event.nid > top
        healer.insert(event.nid, event.attach_to)  # must not raise

    def test_random_churn_survives_deletion_heavy_streams(self):
        """The review's reproduction: seeds whose first coin-flips delete
        the max-id node (DuplicateNodeError before the fix)."""
        for seed in range(12):
            healer = self._healer(n=10, seed=1)
            result = run_churn_campaign(
                healer,
                RandomChurnAdversary(p_insert=0.5, seed=seed),
                events=40,
                measure_diameter=False,
            )
            assert len(result.rounds) == 40

    def test_random_churn_is_deterministic_after_reset(self):
        adv = RandomChurnAdversary(p_insert=0.5, seed=7)
        healer = self._healer()
        first = [adv.next_event(healer) for _ in range(10)]
        adv.reset()
        second = [adv.next_event(healer) for _ in range(10)]
        assert first == second

    def test_growth_then_massacre_phases(self):
        adv = GrowthThenMassacreAdversary(growth=5, killer=MaxDegreeAdversary())
        healer = self._healer()
        for _ in range(5):
            event = adv.next_event(healer)
            assert isinstance(event, Insert)
            healer.insert(event.nid, event.attach_to)
        event = adv.next_event(healer)
        assert isinstance(event, Delete)

    def test_oscillating_alternates(self):
        adv = OscillatingChurnAdversary(period=3, seed=1)
        healer = self._healer()
        kinds = []
        for _ in range(6):
            event = adv.next_event(healer)
            kinds.append(type(event))
            if isinstance(event, Insert):
                healer.insert(event.nid, event.attach_to)
            else:
                healer.delete(event.nid)
        assert kinds[:3] == [Insert] * 3
        assert kinds[3:] == [Delete] * 3

    def test_deletion_only_adapter(self):
        adv = DeletionOnlyChurnAdversary(MaxDegreeAdversary())
        healer = self._healer()
        event = adv.next_event(healer)
        assert isinstance(event, Delete)
        assert "deletion-only" in adv.name

    def test_trace_replay_strictness(self):
        trace = ChurnTrace([Delete(0), Delete(0)])
        adv = TraceReplayAdversary(trace)
        healer = self._healer()
        healer.delete(adv.next_event(healer).nid)
        with pytest.raises(ReproError):
            adv.next_event(healer)  # 0 is already dead

    def test_trace_replay_exhaustion(self):
        adv = TraceReplayAdversary(ChurnTrace([Delete(0)]))
        healer = self._healer()
        adv.next_event(healer)
        with pytest.raises(SimulationOverError):
            adv.next_event(healer)


class TestChurnTraces:
    def test_round_trip_through_lines(self):
        trace = ChurnTrace([Insert(5, 2), Delete(1), Insert(6, 5)], name="t")
        again = ChurnTrace.from_lines(trace.to_lines())
        assert again.events == trace.events

    def test_save_and_load(self, tmp_path):
        trace = ChurnTrace([Insert(9, 0), Delete(9)])
        path = str(tmp_path / "trace.txt")
        trace.save(path)
        assert ChurnTrace.load(path).events == trace.events

    def test_rejects_malformed_line(self):
        with pytest.raises(ReproError):
            ChurnTrace.from_lines(["ins 1"])

    def test_validate_catches_reuse_and_dead_targets(self):
        with pytest.raises(ReproError):
            ChurnTrace([Insert(0, 0)]).validate([0, 1])  # id reuse
        with pytest.raises(ReproError):
            ChurnTrace([Insert(5, 9)]).validate([0, 1])  # dead attach
        with pytest.raises(ReproError):
            ChurnTrace([Delete(7)]).validate([0, 1])  # dead victim

    def test_synthetic_skype_outage_is_valid(self):
        overlay, trace = synthetic_skype_outage(hubs=4, leaves_per_hub=5)
        trace.validate(overlay)
        assert trace.n_inserts > 0 and trace.n_deletes > 0


class TestChurnCampaign:
    def test_records_both_event_kinds(self):
        tree = generators.random_tree(25, seed=2)
        result = run_churn_campaign(
            ForgivingTreeHealer({k: set(v) for k, v in tree.items()}),
            RandomChurnAdversary(p_insert=0.5, seed=4),
            events=80,
        )
        assert len(result.rounds) == 80
        assert result.n_inserts + result.n_deletes == 80
        assert result.n_inserts > 0 and result.n_deletes > 0
        insert_rounds = [r for r in result.rounds if r.event == "insert"]
        assert all(r.deleted == -1 and r.inserted is not None for r in insert_rounds)
        assert result.stayed_connected
        assert result.peak_degree_increase <= 3
        assert result.final_alive == result.n0 + result.net_growth

    def test_churn_duel_same_stream_all_healers(self):
        overlay, trace = synthetic_skype_outage(hubs=4, leaves_per_hub=6)
        results = churn_duel(
            overlay,
            [ForgivingTreeHealer, SurrogateHealer, NoRepairHealer],
            lambda: TraceReplayAdversary(trace),
            events=len(trace),
        )
        ftr = results["forgiving-tree"]
        assert ftr.stayed_connected
        assert ftr.peak_degree_increase <= 3
        # The baselines reproduce their signature failures under churn too.
        assert results["surrogate"].peak_degree_increase > 3 * 4
        assert not results["no-repair"].stayed_connected


class TestDistributedInsert:
    def test_insert_establishes_edge(self):
        dist = DistributedForgivingTree({0: [1, 2]})
        stats = dist.insert(5, 1)
        assert (1, 5) in dist.edges()
        assert stats.total_messages >= 3
        assert stats.sub_rounds <= 4

    def test_insert_rejects_reuse_and_dead_target(self):
        dist = DistributedForgivingTree({0: [1, 2]})
        dist.delete(2)
        with pytest.raises(DuplicateNodeError):
            dist.insert(2, 0)
        with pytest.raises(NodeNotFoundError):
            dist.insert(9, 2)

    def test_inserted_node_heals_like_any_other(self):
        dist = DistributedForgivingTree({0: [1, 2]})
        seq = ForgivingTree({0: [1, 2]}, strict=True)
        for nid, target in ((5, 1), (6, 1), (7, 5)):
            seq.insert(nid, target)
            dist.insert(nid, target)
        for victim in (1, 0, 5):
            seq.delete(victim)
            dist.delete(victim)
            assert seq.edges() == dist.edges()

    @pytest.mark.parametrize("seed", range(8))
    def test_random_churn_cross_validation(self, seed):
        """Sequential and distributed runtimes agree edge-for-edge and
        message-for-message (on insertions) under random churn."""
        rng = random.Random(seed)
        n0 = rng.randint(2, 16)
        tree = generators.random_tree(n0, seed=rng.randint(0, 10**6))
        seq = ForgivingTree(tree, strict=True)
        dist = DistributedForgivingTree(tree)
        nxt = 1000
        for _ in range(60):
            alive = sorted(seq.alive)
            if len(alive) <= 1 or rng.random() < 0.5:
                target = rng.choice(alive)
                report = seq.insert(nxt, target)
                stats = dist.insert(nxt, target)
                assert report.messages_per_node == stats.sent
                nxt += 1
            else:
                victim = rng.choice(alive)
                seq.delete(victim)
                dist.delete(victim)
            assert seq.edges() == dist.edges()


class TestDistributedInsertBatch:
    def test_wave_of_one_equals_single_insert(self):
        tree = {0: [1, 2], 1: [3]}
        seq_single = ForgivingTree(tree, strict=True)
        r_single = seq_single.insert(9, 1)
        dist = DistributedForgivingTree(tree)
        stats = dist.insert_batch([(9, 1)])
        assert r_single.messages_per_node == stats.sent

    def test_batch_rejects_bad_waves(self):
        dist = DistributedForgivingTree({0: [1, 2]})
        with pytest.raises(ValueError):
            dist.insert_batch([])
        with pytest.raises(DuplicateNodeError):
            dist.insert_batch([(5, 0), (5, 1)])
        with pytest.raises(DuplicateNodeError):
            dist.insert_batch([(1, 0)])
        with pytest.raises(NodeNotFoundError):
            dist.insert_batch([(5, 0), (6, 5)])  # same-wave attachment
        with pytest.raises(NodeNotFoundError):
            dist.insert_batch([(5, 99)])
        assert dist.alive == {0, 1, 2}

    @pytest.mark.parametrize("seed", range(10))
    def test_batch_message_parity_random_waves(self, seed):
        """Sequential and distributed runtimes agree edge-for-edge and
        message-for-message across random wave sizes mixed with single
        inserts and deletions (extends the per-insertion cross-check)."""
        rng = random.Random(seed)
        n0 = rng.randint(2, 16)
        tree = generators.random_tree(n0, seed=rng.randint(0, 10**6))
        seq = ForgivingTree(tree, strict=True)
        dist = DistributedForgivingTree(tree)
        nxt = 1000
        for _ in range(30):
            alive = sorted(seq.alive)
            roll = rng.random()
            if len(alive) <= 1 or roll < 0.4:
                wave = []
                for _ in range(rng.randint(1, 6)):
                    wave.append((nxt, rng.choice(alive)))
                    nxt += 1
                report = seq.insert_batch(wave)
                stats = dist.insert_batch(wave)
                assert report.messages_per_node == stats.sent
                assert report.inserted_batch == tuple(wave)
            elif roll < 0.65:
                target = rng.choice(alive)
                report = seq.insert(nxt, target)
                stats = dist.insert(nxt, target)
                assert report.messages_per_node == stats.sent
                nxt += 1
            else:
                victim = rng.choice(alive)
                seq.delete(victim)
                dist.delete(victim)
            assert seq.edges() == dist.edges()

    def test_wave_members_heal_like_any_other(self):
        tree = generators.random_tree(8, seed=3)
        seq = ForgivingTree(tree, strict=True)
        dist = DistributedForgivingTree(tree)
        wave = [(100 + i, i % 4) for i in range(8)]
        seq.insert_batch(wave)
        dist.insert_batch(wave)
        rng = random.Random(3)
        for _ in range(10):
            victim = rng.choice(sorted(seq.alive))
            seq.delete(victim)
            dist.delete(victim)
            assert seq.edges() == dist.edges()


class TestWaveChurnAdversary:
    def test_emits_waves_with_fresh_ids_and_live_targets(self):
        healer = ForgivingTreeHealer(
            {k: set(v) for k, v in generators.random_tree(15, seed=2).items()}
        )
        adv = WaveChurnAdversary(wave=4, p_wave=1.0, seed=0)
        seen = set(healer.alive)
        for _ in range(10):
            event = adv.next_event(healer)
            assert isinstance(event, InsertWave)
            assert len(event.joiners) == 4
            for nid, attach_to in event.joiners:
                assert nid not in seen
                assert attach_to in healer.alive
                seen.add(nid)
            healer.insert_batch(event.joiners)

    def test_deterministic_after_reset(self):
        healer = ForgivingTreeHealer(
            {k: set(v) for k, v in generators.random_tree(10, seed=1).items()}
        )
        adv = WaveChurnAdversary(wave=3, p_wave=0.5, seed=11)
        first = [adv.next_event(healer) for _ in range(8)]
        adv.reset()
        second = [adv.next_event(healer) for _ in range(8)]
        assert first == second

    def test_baseline_healers_accept_waves(self):
        for factory in (SurrogateHealer, LineHealer, BinaryTreeHealer, NoRepairHealer):
            healer = factory({0: {1, 2}, 1: {0}, 2: {0}})
            report = healer.insert_batch([(9, 0), (10, 2)])
            assert report.is_insertion and report.inserted_batch == ((9, 0), (10, 2))
            assert {9, 10} <= healer.alive
            assert healer.rounds == 1

    def test_baseline_wave_rejection_is_atomic(self):
        """A rejected wave must leave no partial state behind — the same
        atomicity the engines give (regression: the default healer used
        to apply earlier joiners before hitting the bad one)."""
        healer = LineHealer({0: {1}, 1: {0}})
        for bad_wave, exc in (
            ([(5, 0), (6, 99)], NodeNotFoundError),  # dead attach point
            ([(5, 0), (6, 5)], NodeNotFoundError),  # same-wave attachment
            ([(5, 0), (5, 1)], DuplicateNodeError),  # dup within wave
            ([(5, 0), (1, 0)], DuplicateNodeError),  # id reuse
            ([], ValueError),
        ):
            with pytest.raises(exc):
                healer.insert_batch(bad_wave)
            assert healer.alive == {0, 1}
            assert healer.rounds == 0


class TestAcceptanceCriterion:
    def test_mixed_campaign_100_nodes_200_events_both_runtimes(self):
        """The PR's acceptance bar: a random-churn campaign (n0=100,
        >= 200 events) through both the sequential engine and the
        distributed runtime with matching message accounting, connected
        every round, degree increase never above 3."""
        n0, events = 100, 220
        tree = generators.random_tree(n0, seed=42)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        dist = DistributedForgivingTree(tree)
        adversary = RandomChurnAdversary(p_insert=0.5, seed=42)
        adversary.reset()
        inserts = deletes = 0
        for _ in range(events):
            event = adversary.next_event(healer)
            if isinstance(event, Insert):
                report = healer.insert(event.nid, event.attach_to)
                stats = dist.insert(event.nid, event.attach_to)
                # message accounting matches node-for-node
                assert report.messages_per_node == stats.sent
                inserts += 1
            else:
                healer.delete(event.nid)
                dist.delete(event.nid)
                deletes += 1
            assert healer.engine.edges() == dist.edges()
            assert is_connected(healer.graph())
            assert healer.max_degree_increase() <= 3
            assert dist.max_degree_increase() <= 3
        assert inserts + deletes == events
        assert inserts > 50 and deletes > 50
