"""Unit tests for the virtual tree and its incremental image graph."""

import pytest

from repro.core.errors import (
    DuplicateNodeError,
    InvariantViolationError,
    NodeNotFoundError,
)
from repro.core.events import EdgeAdded, EdgeRemoved
from repro.core.virtual_tree import VirtualTree, VTHelper, VTReal


def build_simple():
    """0 - 1, 0 - 2 (root 0)."""
    vt = VirtualTree()
    r0, r1, r2 = vt.add_real(0), vt.add_real(1), vt.add_real(2)
    vt.set_root(r0)
    vt.attach(r1, r0)
    vt.attach(r2, r0)
    return vt, r0, r1, r2


class TestImageBookkeeping:
    def test_real_edges(self):
        vt, *_ = build_simple()
        assert vt.image_edges() == {(0, 1), (0, 2)}
        vt.check()

    def test_helper_self_loop_vanishes(self):
        vt, r0, r1, r2 = build_simple()
        helper = vt.new_helper(1)  # simulated by 1
        vt.detach(r1)
        vt.attach(helper, r0)
        vt.attach(r1, helper)  # edge helper(sim 1) - real 1: self-loop
        assert vt.image_edges() == {(0, 1), (0, 2)}
        vt.check()

    def test_duplicate_edges_merge(self):
        vt, r0, r1, r2 = build_simple()
        helper = vt.new_helper(2)
        vt.detach(r2)
        vt.attach(helper, r0)  # image 0-2
        vt.attach(r2, helper)  # self-loop
        # 0-2 present exactly once even though contributed by helper
        assert vt.image_edges() == {(0, 1), (0, 2)}
        assert vt.image_degree(0) == 2

    def test_recorder_events(self):
        events = []
        vt = VirtualTree(recorder=events.append)
        a, b = vt.add_real(1), vt.add_real(2)
        vt.set_root(a)
        vt.attach(b, a)
        assert events == [EdgeAdded(1, 2)]
        vt.detach(b)
        assert events[-1] == EdgeRemoved(1, 2)

    def test_transfer_role_moves_edges(self):
        vt, r0, r1, r2 = build_simple()
        helper = vt.new_helper(1)
        vt.detach(r2)
        vt.attach(helper, r0)
        vt.attach(r2, helper)
        assert vt.image_edges() == {(0, 1), (1, 2)}
        vt.transfer_role(helper, 2)
        # now the helper maps to 2: edge 1-2 gone, 0-2 appears
        assert vt.image_edges() == {(0, 1), (0, 2)}
        assert vt.role_of(2) is helper
        assert vt.role_of(1) is None
        vt.check()


class TestStructuralOps:
    def test_splice(self):
        vt, r0, r1, r2 = build_simple()
        helper = vt.new_helper(1)
        vt.detach(r2)
        vt.attach(helper, r0)
        vt.attach(r2, helper)
        moved = vt.splice(helper)
        assert moved is r2
        assert r2.parent is r0
        assert vt.role_of(1) is None
        assert vt.image_edges() == {(0, 1), (0, 2)}
        vt.check()

    def test_splice_needs_single_child(self):
        vt, r0, r1, r2 = build_simple()
        helper = vt.new_helper(1)
        vt.detach(r1), vt.detach(r2)
        vt.attach(helper, r0)
        vt.attach(r1, helper)
        vt.attach(r2, helper)
        with pytest.raises(InvariantViolationError):
            vt.splice(helper)

    def test_replace_child_positional(self):
        vt, r0, r1, r2 = build_simple()
        r3 = vt.add_real(3)
        vt.replace_child(r0, r1, r3)
        assert r0.children[0] is r3
        assert r1.parent is None
        assert vt.image_edges() == {(0, 3), (0, 2)}

    def test_one_role_per_node(self):
        vt, *_ = build_simple()
        vt.new_helper(1)
        with pytest.raises(InvariantViolationError):
            vt.new_helper(1)

    def test_helper_needs_live_sim(self):
        vt, *_ = build_simple()
        with pytest.raises(NodeNotFoundError):
            vt.new_helper(99)

    def test_remove_real_requires_detached(self):
        vt, r0, r1, r2 = build_simple()
        with pytest.raises(InvariantViolationError):
            vt.remove_real(r1)
        vt.detach(r1)
        vt.remove_real(r1)
        assert 1 not in vt

    def test_remove_real_requires_role_free(self):
        vt, r0, r1, r2 = build_simple()
        vt.new_helper(1)  # 1 simulates something
        vt.detach(r1)
        with pytest.raises(InvariantViolationError):
            vt.remove_real(r1)

    def test_duplicate_real(self):
        vt, *_ = build_simple()
        with pytest.raises(DuplicateNodeError):
            vt.add_real(0)

    def test_check_detects_unreachable(self):
        vt, r0, r1, r2 = build_simple()
        vt.add_real(9)  # registered but never attached
        with pytest.raises(InvariantViolationError):
            vt.check()

    def test_render_smoke(self):
        vt, r0, r1, r2 = build_simple()
        helper = vt.new_helper(1)
        vt.detach(r2)
        vt.attach(helper, r0)
        vt.attach(r2, helper)
        text = vt.render()
        assert "0" in text and "<1>" in text  # one-child helper renders <sim>
