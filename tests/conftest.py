"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

import pytest

from repro import ForgivingTree
from repro.core.invariants import check_full
from repro.graphs import generators, metrics


def run_full_campaign(
    tree: Dict[int, Iterable[int]],
    order: Optional[List[int]] = None,
    seed: int = 0,
    branching: int = 2,
    check_every: int = 1,
    will_mode: str = "splice",
) -> ForgivingTree:
    """Delete every node in ``order`` (default: seeded shuffle), checking
    invariants along the way; returns the (empty) engine."""
    ft = ForgivingTree(tree, strict=True, branching=branching, will_mode=will_mode)
    d0 = metrics.diameter_exact({k: set(v) for k, v in tree.items()}) if len(tree) > 1 else 0
    delta = max((len(v) for v in tree.values()), default=0)
    if order is None:
        order = sorted(tree)
        random.Random(seed).shuffle(order)
    for i, nid in enumerate(order):
        ft.delete(nid)
        if len(ft) > 1 and i % check_every == 0:
            check_full(ft, original_diameter=d0, max_degree=delta)
    return ft


@pytest.fixture
def star9():
    return generators.star(8)


@pytest.fixture
def path10():
    return generators.path(10)


@pytest.fixture
def random_tree_30():
    return generators.random_tree(30, seed=7)


#: The Figure 5 instance: r=0, p=4, v=6, i=5, j=7, k=8, a..h = 10..17,
#: m,n,o = 18,19,20.  Chosen so the sorted orders match the figure
#: (i < v < j < k and heirs h, k, o).
FIGURE5_TREE = {
    0: [4],
    4: [5, 6, 7, 8],
    6: [10, 11, 12, 13, 14, 15, 16, 17],
    17: [18, 19, 20],
}

FIG5 = {
    "r": 0,
    "p": 4,
    "i": 5,
    "v": 6,
    "j": 7,
    "k": 8,
    "a": 10,
    "b": 11,
    "c": 12,
    "d": 13,
    "e": 14,
    "f": 15,
    "g": 16,
    "h": 17,
    "m": 18,
    "n": 19,
    "o": 20,
}


@pytest.fixture
def figure5_tree():
    return {k: list(v) for k, v in FIGURE5_TREE.items()}
