"""Unit tests for the slot tree (GenerateSubRT + positional maintenance)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import (
    DuplicateNodeError,
    EmptyStructureError,
    InvariantViolationError,
    NodeNotFoundError,
)
from repro.core.slot_tree import SlotTree


class TestConstruction:
    def test_empty(self):
        tree = SlotTree([])
        assert len(tree) == 0
        assert tree.heir is None
        assert not tree

    def test_single(self):
        tree = SlotTree([7])
        assert tree.stand_ins == [7]
        assert tree.heir == 7
        assert tree.internal_sims == []
        assert tree.depth() == 0
        assert tree.root_sim() == 7

    def test_pair(self):
        tree = SlotTree([3, 9])
        # Two leaves, one internal keyed by the smaller (non-heir) child.
        assert tree.stand_ins == [3, 9]
        assert tree.heir == 9
        assert tree.internal_sims == [3]
        assert tree.as_shape() == (3, 3, 9)

    def test_figure2_shape(self):
        """Figure 2's four-child example: children a,b,c,h -> 1,2,3,8."""
        tree = SlotTree([1, 2, 3, 8])
        # Root keyed b(=2): left h_a{a,b}, right h_c{c,h}.
        assert tree.as_shape() == (2, (1, 1, 2), (3, 3, 8))
        assert tree.heir == 8
        # Portion facts from Figure 2:
        assert tree.attachment_sim(8) == 3  # h's nextparent is c
        assert tree.attachment_sim(2) == 1  # b's nextparent is a
        assert tree.attachment_sim(1) == 2  # a attaches past its own helper
        assert tree.internal_parent_sim(3) == 2  # c's helper hangs below b's
        assert tree.root_sim() == 2

    def test_figure5_eight_children(self):
        """The eight-child SubRT(v) of Figure 5 (a..h -> 10..17)."""
        tree = SlotTree(list(range(10, 18)))
        assert tree.as_shape() == (
            13,
            (11, (10, 10, 11), (12, 12, 13)),
            (15, (14, 14, 15), (16, 16, 17)),
        )
        assert tree.heir == 17
        assert tree.depth() == 3

    def test_sorted_on_construction(self):
        tree = SlotTree([5, 1, 3])
        assert tree.stand_ins == [1, 3, 5]
        assert tree.heir == 5

    def test_duplicate_rejected(self):
        with pytest.raises(DuplicateNodeError):
            SlotTree([1, 1, 2])

    def test_bad_branching(self):
        with pytest.raises(ValueError):
            SlotTree([1, 2], branching=1)

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 16, 33, 100])
    def test_depth_is_logarithmic(self, n):
        tree = SlotTree(list(range(n)))
        import math

        assert tree.depth() <= max(1, math.ceil(math.log2(n)))

    @pytest.mark.parametrize("b,n", [(3, 9), (3, 10), (4, 17), (5, 26)])
    def test_generalized_depth(self, b, n):
        import math

        tree = SlotTree(list(range(n)), branching=b)
        tree.check()
        assert tree.depth() <= max(1, math.ceil(math.log(n, b)))

    def test_internal_sims_are_non_heir_children(self):
        tree = SlotTree(list(range(6)))
        assert set(tree.internal_sims) == set(range(5))  # all but heir 5

    def test_heir_never_internal(self):
        for n in range(2, 20):
            tree = SlotTree(list(range(n)))
            assert tree.heir not in tree.internal_sims


class TestRemoval:
    def test_remove_to_empty(self):
        tree = SlotTree([4])
        delta = tree.remove(4)
        assert delta.emptied
        assert len(tree) == 0
        assert tree.heir is None

    def test_remove_heir_transfers_to_spliced_sim(self):
        # Paper: "the surviving child whose helper node has just decreased
        # in degree from 3 to 2" becomes the new heir.
        tree = SlotTree([1, 2, 3, 8])
        delta = tree.remove(8)  # the heir dies
        assert delta.new_heir == 3  # h_c was spliced; c is freed
        assert tree.heir == 3
        assert 3 not in tree.internal_sims
        tree.check()

    def test_remove_non_heir_rekeys(self):
        tree = SlotTree([1, 2, 3, 8])
        delta = tree.remove(2)  # b dies; its internal (the root) re-keys
        assert delta.reassigned == (2, 1)  # a's helper was spliced; a re-keys
        assert tree.heir == 8
        tree.check()

    def test_remove_left_leaf_own_key(self):
        tree = SlotTree([1, 2, 3, 8])
        delta = tree.remove(1)  # a is a left leaf keyed by itself
        assert delta.spliced_sim == 1
        assert delta.reassigned is None
        tree.check()
        assert set(tree.stand_ins) == {2, 3, 8}

    def test_remove_missing(self):
        tree = SlotTree([1, 2])
        with pytest.raises(NodeNotFoundError):
            tree.remove(99)

    def test_touched_is_small(self):
        tree = SlotTree(list(range(64)))
        delta = tree.remove(31)
        # O(1) portions change per removal (Theorem 1.3's enabler).
        assert len(delta.touched) <= 8

    def test_remove_all_one_by_one(self):
        tree = SlotTree(list(range(12)))
        for x in [5, 0, 11, 3, 7, 1, 9, 2, 10, 4, 6, 8]:
            tree.remove(x)
            tree.check()
        assert len(tree) == 0


class TestReplace:
    def test_replace_plain(self):
        tree = SlotTree([1, 2, 3, 8])
        delta = tree.replace(3, 42)
        assert not delta.was_heir
        assert delta.had_internal
        assert 42 in tree
        assert 3 not in tree
        assert 42 in tree.internal_sims
        tree.check()

    def test_replace_heir_keeps_heirship(self):
        tree = SlotTree([1, 2, 3, 8])
        delta = tree.replace(8, 0)  # heir replaced positionally
        assert delta.was_heir
        assert tree.heir == 0
        tree.check()

    def test_replace_keeps_shape(self):
        tree = SlotTree([1, 2, 3, 8])
        before = tree.as_shape()
        tree.replace(2, 77)

        def sub(x):
            if isinstance(x, tuple):
                return tuple(sub(c) for c in x)
            return 77 if x == 2 else x

        assert tree.as_shape() == sub(before)

    def test_replace_collision(self):
        tree = SlotTree([1, 2, 3])
        with pytest.raises(DuplicateNodeError):
            tree.replace(1, 2)


class TestExclusionApi:
    def test_exclusion_moves_assignments(self):
        tree = SlotTree(list(range(8)), branching=4)
        busy = set(tree.internal_sims[:1])
        touched = tree.exclude_from_assignment(busy)
        tree.check()
        assert not busy & set(tree.internal_sims)
        assert touched

    def test_set_heir(self):
        tree = SlotTree(list(range(6)), branching=4)
        free = [s for s in tree.stand_ins if s != tree.heir and not tree.has_internal(s)]
        assert free
        tree.set_heir(free[0])
        assert tree.heir == free[0]
        tree.check()

    def test_set_heir_rejects_internal(self):
        tree = SlotTree([1, 2, 3, 8])
        with pytest.raises(InvariantViolationError):
            tree.set_heir(2)  # 2 holds the root internal


class TestErrors:
    def test_depth_of_empty(self):
        with pytest.raises(EmptyStructureError):
            SlotTree([]).depth()

    def test_root_of_empty(self):
        with pytest.raises(EmptyStructureError):
            SlotTree([]).root_sim()


@settings(max_examples=200, deadline=None)
@given(
    ids=st.lists(st.integers(0, 10_000), min_size=1, max_size=40, unique=True),
    seed=st.integers(0, 2**32 - 1),
)
def test_property_random_removals_keep_invariants(ids, seed):
    """Any removal order keeps the slot tree a valid full search tree with
    the heir outside the assignment and O(1) touched portions per step."""
    import random as _random

    tree = SlotTree(ids)
    order = list(ids)
    _random.Random(seed).shuffle(order)
    for x in order:
        delta = tree.remove(x)
        tree.check()
        if not delta.emptied:
            assert len(delta.touched) <= 8


@settings(max_examples=100, deadline=None)
@given(
    ids=st.lists(st.integers(0, 1000), min_size=2, max_size=24, unique=True),
    branching=st.integers(2, 5),
    seed=st.integers(0, 2**32 - 1),
)
def test_property_generalized_removals(ids, branching, seed):
    import random as _random

    tree = SlotTree(ids, branching=branching)
    tree.check()
    order = list(ids)
    _random.Random(seed).shuffle(order)
    for x in order:
        tree.remove(x)
        tree.check()


@settings(max_examples=100, deadline=None)
@given(ids=st.lists(st.integers(0, 1000), min_size=2, max_size=20, unique=True))
def test_property_clone_equals_original(ids):
    tree = SlotTree(ids)
    clone = tree.clone()
    assert clone.as_shape() == tree.as_shape()
    assert clone.heir == tree.heir
    clone.remove(clone.stand_ins[0])
    assert tree.as_shape() != clone.as_shape() or len(ids) == 1
