"""Tests for the guarantee auditor (repro.audit).

The walls the ISSUE demands: the typed record schema round-trips the
legacy tuple dialect losslessly; the query operators and CLI work over
JSONL exports; the certificates pass on seeded FT and FG campaigns
across every latency x scheduler model, under lease overlap and under a
drop/dup/crash fault plan — computed from exported telemetry only (the
auditor's modules import nothing from the engines at import time) —
and the mutation self-test shows each certificate class catching its
seeded corruption with the offending heal and event-id window named.
"""

import ast
import pathlib

import pytest

from repro.adversaries.churn import RandomChurnAdversary
from repro.audit import (
    CERTIFICATE_KINDS,
    CORRUPTIONS,
    SCHEMA_VERSION,
    AuditError,
    AuditReport,
    ControlRecord,
    CrashRecord,
    DeliverRecord,
    DropRecord,
    DupRecord,
    DupSuppressedRecord,
    HealDelta,
    LogQuery,
    SendRecord,
    Violation,
    certify_campaign,
    check_corruption,
    decode_log,
    decode_record,
    heal_flows,
    link_table,
    load_jsonl,
    queue_timeline,
    record_from_dict,
    run_self_test,
    write_jsonl,
)
from repro.audit import mutate as mutate_mod
from repro.audit import query as query_mod
from repro.audit.schema import normalize_edges
from repro.baselines.forgiving import ForgivingTreeHealer
from repro.faults import CrashDuringHeal, FaultPlan
from repro.fgraph.healer import ForgivingGraphHealer
from repro.graphs import generators
from repro.harness import run_churn_campaign
from repro.obs import ObsSpec
from repro.simnet import LATENCY_CATALOG, SCHEDULER_CATALOG, TransportSpec


def _tree_graph(n, seed):
    return {k: set(v) for k, v in generators.random_tree(n, seed).items()}


def _audited_run(
    healer_cls,
    seed=11,
    n=24,
    events=16,
    latency="uniform",
    scheduler="latency",
    overlap="lease",
    plan=None,
    strict=True,
):
    spec = TransportSpec(
        mode="async",
        latency=latency,
        scheduler=scheduler,
        overlap=overlap,
        seed=seed,
        faults=plan,
    )
    obs = (
        "audit"
        if strict
        else ObsSpec(audit=True, recorder=512, audit_strict=False)
    )
    return run_churn_campaign(
        healer_cls(_tree_graph(n, seed)),
        RandomChurnAdversary(p_insert=0.3, seed=seed),
        events=events,
        transport=spec,
        seed=seed,
        obs=obs,
    )


@pytest.fixture(scope="module")
def audited_ft():
    """One audited FT campaign: lease overlap + drop/dup/crash faults."""
    plan = FaultPlan(
        drop=0.1, dup=0.05, crashes=(CrashDuringHeal(event=5),), seed=7
    )
    return _audited_run(ForgivingTreeHealer, plan=plan)


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------

class TestSchema:
    def test_legacy_tuple_decoding(self):
        assert decode_record((1.0, 3, 2, 4, 5, "Deleted")) == DeliverRecord(
            1.0, 3, 2, 4, 5, msg="Deleted"
        )
        assert decode_record((1.0, 3, -1, 4, 5, "drop:WillMsg")) == DropRecord(
            1.0, 3, -1, 4, 5, msg="WillMsg"
        )
        assert isinstance(
            decode_record((1.0, 3, 0, 4, 5, "dup:WillMsg")), DupRecord
        )
        assert isinstance(
            decode_record((1.0, 3, 0, 4, 5, "dup-suppressed:WillMsg")),
            DupSuppressedRecord,
        )
        crash = decode_record((2.0, 7, -1, 9, -1, "crash"))
        assert isinstance(crash, CrashRecord) and crash.victim == 9
        ctl = decode_record((2.0, 7, -1, -1, -1, "lease-grant"))
        assert isinstance(ctl, ControlRecord)
        assert ctl.ref == 7 and ctl.ctl == "lease-grant"

    def test_tuple_round_trip(self):
        rows = [
            (1.0, 3, 2, 4, 5, "Deleted"),
            (1.5, 3, -1, 4, 5, "drop:WillMsg"),
            (2.0, 7, -1, 9, -1, "crash"),
            (2.5, 7, -1, -1, -1, "lease-release"),
        ]
        assert [r.to_tuple() for r in decode_log(rows)] == rows

    def test_typed_records_pass_through(self):
        rec = SendRecord(1.0, 2, 0, 3, 4, msg="WillMsg", seq=17, ids=3)
        assert decode_record(rec) is rec
        assert rec.tag() == "send:WillMsg"
        assert rec.to_tuple() == (1.0, 2, 0, 3, 4, "send:WillMsg")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_record((1.0, 2, 3))
        with pytest.raises(ValueError):
            decode_record((1.0, 2, 3, 4, 5, 6))

    def test_dict_round_trip(self):
        rec = SendRecord(1.0, 2, 0, 3, 4, msg="WillMsg", seq=17, ids=3)
        d = rec.to_dict()
        assert d["v"] == SCHEMA_VERSION and d["kind"] == "send"
        assert record_from_dict(d) == rec
        with pytest.raises(ValueError):
            record_from_dict({**d, "v": 99})
        with pytest.raises(ValueError):
            record_from_dict({**d, "kind": "telegram"})
        with pytest.raises(ValueError):
            record_from_dict({"v": SCHEMA_VERSION, "kind": "send"})

    def test_jsonl_round_trip(self, tmp_path, audited_ft):
        log = audited_ft.transport.event_log
        path = str(tmp_path / "log.jsonl")
        assert write_jsonl(log, path) == len(log)
        assert list(load_jsonl(path)) == decode_log(log)

    def test_normalize_edges(self):
        assert normalize_edges({0: {1}, 1: {0, 2}, 2: {1}}) == frozenset(
            {(0, 1), (1, 2)}
        )
        assert normalize_edges([(2, 1), (1, 2)]) == frozenset({(1, 2)})

    def test_heal_delta_region(self):
        delta = HealDelta(
            kind="delete", victim=5, touched=((1, 5), (1, 3))
        )
        assert delta.region == frozenset({1, 3, 5})
        wave = HealDelta(kind="insert", joiners=((9, 2), (10, 2)))
        assert wave.region == frozenset({2, 9, 10})


# ---------------------------------------------------------------------------
# Query operators + CLI
# ---------------------------------------------------------------------------

_SYNTH = [
    SendRecord(0.0, 1, 0, 2, 3, msg="A", seq=0, ids=2),
    DeliverRecord(1.0, 1, 0, 2, 3, msg="A", seq=0),
    SendRecord(1.5, 2, 0, 3, 4, msg="B", seq=1, ids=1),
    DropRecord(1.5, 2, 0, 3, 4, msg="B", seq=1),
    DeliverRecord(3.5, 2, 0, 3, 4, msg="B", seq=1),
]


class TestQuery:
    def test_filter_kind_heal_between(self):
        assert LogQuery(_SYNTH).kind("send").count() == 2
        assert LogQuery(_SYNTH).heal(2).count() == 3
        assert LogQuery(_SYNTH).between(1.0, 1.5).count() == 3
        assert (
            LogQuery(_SYNTH).filter(lambda r: r.msg == "A").to_list()
            == _SYNTH[:2]
        )

    def test_join_sends_to_delivers(self):
        pairs = list(
            LogQuery(_SYNTH)
            .kind("deliver")
            .join(
                LogQuery(_SYNTH).kind("send").to_list(),
                key=lambda r: r.seq,
            )
        )
        assert [(d.msg, s.seq) for d, s in pairs] == [("A", 0), ("B", 1)]

    def test_group_by_first_seen_order(self):
        groups = LogQuery(_SYNTH).group_by(lambda r: r.heal)
        assert list(groups) == [1, 2]
        assert len(groups[2]) == 3

    def test_window_tumbles(self):
        windows = list(LogQuery(_SYNTH).window(1.0))
        assert [w[0] for w in windows] == [0.0, 1.0, 2.0, 3.0]
        assert [len(w[1]) for w in windows] == [1, 3, 0, 1]
        with pytest.raises(ValueError):
            list(LogQuery(_SYNTH).window(0))

    def test_queries_decode_legacy_tuples(self):
        assert LogQuery([(1.0, 3, 2, 4, 5, "Deleted")]).kind(
            "deliver"
        ).count() == 1

    def test_heal_flows(self, audited_ft):
        log = audited_ft.transport.event_log
        flows = heal_flows(log)
        assert set(flows) == {
            r.heal for r in decode_log(log) if r.kind != "control"
        }
        for f in flows.values():
            assert f["t_first"] <= f["t_last"]
            assert f["delivers"] == sum(f["msgs"].values())
        assert list(heal_flows(log, hid=1)) == [1]

    def test_link_table(self, audited_ft):
        log = audited_ft.transport.event_log
        table = link_table(log)
        assert sum(r["delivered"] for r in table) == sum(
            1 for rec in decode_log(log) if rec.kind == "deliver"
        )
        hot = table[0]["delivered"] + table[0]["dropped"]
        assert all(r["delivered"] + r["dropped"] <= hot for r in table[1:])
        assert link_table(log, top=3) == table[:3]

    def test_queue_timeline_drains(self, audited_ft):
        timeline = queue_timeline(audited_ft.transport.event_log)
        assert timeline and timeline[-1]["depth"] == 0
        assert all(row["depth"] >= 0 for row in timeline)

    def test_cli(self, tmp_path, capsys, audited_ft):
        path = str(tmp_path / "log.jsonl")
        write_jsonl(audited_ft.transport.event_log, path)
        for args in (
            ["flows", path],
            ["flows", path, "--heal", "1", "--json"],
            ["links", path, "--top", "5"],
            ["queues", path, "--bucket", "2.0"],
        ):
            assert query_mod.main(args) == 0
            assert capsys.readouterr().out.strip()


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------

class TestCertificates:
    @pytest.mark.parametrize("healer_cls", (ForgivingTreeHealer, ForgivingGraphHealer))
    @pytest.mark.parametrize("latency", LATENCY_CATALOG)
    @pytest.mark.parametrize("scheduler", SCHEDULER_CATALOG)
    def test_pass_across_models(self, healer_cls, latency, scheduler):
        """The acceptance wall: every latency x scheduler model, both
        protocols, lease overlap + drop/dup faults — certified clean
        (obs="audit" is strict, so a violation would raise here)."""
        res = _audited_run(
            healer_cls,
            seed=5,
            n=16,
            events=10,
            latency=latency,
            scheduler=scheduler,
            plan=FaultPlan(drop=0.1, dup=0.05, seed=3),
        )
        assert res.audit is not None and res.audit.ok
        assert res.audit.records == len(res.transport.event_log)

    def test_crash_campaign_certifies(self, audited_ft):
        report = audited_ft.audit
        assert report is not None and report.ok
        assert report.protocol == "ft"
        assert len(report.certificates) == len(audited_ft.transport.heal_stats)
        summary = report.summary()
        assert summary["ok"] and summary["first_violation"] is None
        assert summary["heals"] == len(report.certificates)
        # Every certificate class ran somewhere in the campaign.
        assert set(summary["checks"]) == set(CERTIFICATE_KINDS)

    def test_fg_protocol_tagged(self):
        res = _audited_run(ForgivingGraphHealer, n=16, events=10)
        assert res.audit.protocol == "fg"

    def test_inputs_kept_for_recertification(self, audited_ft):
        inputs = audited_ft.audit_inputs
        assert inputs is not None
        again = inputs.certify()
        assert again.ok and again.records == audited_ft.audit.records

    def test_audit_needs_async_transport(self):
        healer = ForgivingTreeHealer(_tree_graph(8, 1))
        with pytest.raises(ValueError):
            run_churn_campaign(
                healer,
                RandomChurnAdversary(seed=1),
                events=4,
                obs="audit",
            )

    def test_certify_pure_legacy_log(self, audited_ft):
        """A pre-schema log (bare tuples, no send records) still gets
        causality/accounting checked; send-side checks are skipped, not
        spuriously violated."""
        inputs = audited_ft.audit_inputs
        legacy = [
            rec.to_tuple()
            for rec in decode_log(inputs.records)
            if rec.kind in ("deliver", "crash", "control")
        ]
        report = certify_campaign(
            legacy,
            inputs.heal_stats,
            deltas=inputs.deltas,
            initial_edges=inputs.initial_edges,
            protocol="ft",
        )
        # Arrival tallies no longer match the kernel stats (we stripped
        # the fault rows), but nothing crashes and budget stays skipped.
        assert all(
            v.cert in ("accounting", "locality") for v in report.violations
        )

    def test_raise_on_violation_names_evidence(self):
        report = AuditReport(protocol="ft")
        report.campaign_violations.append(
            Violation("budget", 4, (10, 12), "node 7 sent 99 messages")
        )
        with pytest.raises(AuditError, match=r"heal 4 events 10\.\.12"):
            report.raise_on_violation()


# ---------------------------------------------------------------------------
# Mutation self-test
# ---------------------------------------------------------------------------

class TestMutation:
    @pytest.fixture(scope="class")
    def clean_inputs(self):
        return mutate_mod._self_test_inputs(seed=11)

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_each_corruption_is_caught(self, clean_inputs, name):
        caught, detail, violation = check_corruption(clean_inputs, name)
        expected_cert = CORRUPTIONS[name][0]
        assert caught, detail
        assert violation.cert == expected_cert
        # The auditor names the offending heal and event-id window.
        assert violation.heal >= 0
        assert 0 <= violation.window[0] <= violation.window[1]

    def test_run_self_test_passes(self):
        outcomes = run_self_test(seed=11)
        assert set(outcomes) == set(CORRUPTIONS)

    def test_cli(self, capsys):
        assert mutate_mod.main(["--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert f"{len(CORRUPTIONS)}/{len(CORRUPTIONS)} corruptions caught" in out

    def test_undetected_corruption_raises(self, clean_inputs, monkeypatch):
        monkeypatch.setitem(
            mutate_mod.CORRUPTIONS, "no-op", ("budget", lambda log, inputs: log)
        )
        with pytest.raises(AuditError, match="no-op"):
            run_self_test(seed=11)


# ---------------------------------------------------------------------------
# Independence: the auditor consumes telemetry, not engines.
# ---------------------------------------------------------------------------

_ENGINE_PACKAGES = (
    "simnet",
    "distributed",
    "fgraph",
    "baselines",
    "regions",
    "harness",
    "faults",
    "churn",
    "adversaries",
    "graphs",
    "core.engine",
    "core.flat",
    "obs",
    "soak",
)


class TestIndependence:
    def test_no_module_level_engine_imports(self):
        """Every repro.audit module's *top-level* imports stay inside the
        package, repro.core.errors, and the stdlib — the harness import
        in mutate.py is function-local by design.  This is the
        oracle-independence acceptance wall, checked structurally."""
        pkg = pathlib.Path(mutate_mod.__file__).parent
        for path in sorted(pkg.glob("*.py")):
            tree = ast.parse(path.read_text())
            for node in tree.body:  # module level only
                names = []
                if isinstance(node, ast.Import):
                    names = [a.name for a in node.names]
                elif isinstance(node, ast.ImportFrom):
                    if node.level >= 1:
                        mod = node.module or ""
                        full = "repro." + mod if node.level == 2 else mod
                        names = [full]
                    else:
                        names = [node.module or ""]
                for name in names:
                    assert not any(
                        name == f"repro.{p}" or name.startswith(f"repro.{p}.")
                        for p in _ENGINE_PACKAGES
                    ), f"{path.name} imports {name} at module level"
