#!/usr/bin/env python3
"""Tournament: every healer against every adversary (Model 2.1 metrics).

Reproduces the introduction's comparison at a glance: the Forgiving Tree
is the only strategy bounding *both* success metrics at once — Theorem 2
says some tension is unavoidable, Theorem 1 says this much is achievable.

Run:  python examples/adversarial_duel.py
"""

from repro.adversaries import (
    DiameterGreedyAdversary,
    MaxDegreeAdversary,
    RandomAdversary,
    SurrogateKillerAdversary,
)
from repro.baselines import (
    BinaryTreeHealer,
    ForgivingTreeHealer,
    LineHealer,
    SurrogateHealer,
)
from repro.graphs import generators, metrics
from repro.harness import run_campaign
from repro.harness.report import format_table


def main() -> None:
    overlay = generators.broom(6, 40)  # a hub at the end of a corridor
    n = len(overlay)
    d0 = metrics.diameter_exact(overlay)
    print(f"arena: broom graph, n={n}, diameter={d0}\n")

    adversaries = {
        "random": lambda: RandomAdversary(7),
        "hub-killer": MaxDegreeAdversary,
        "surrogate-killer": SurrogateKillerAdversary,
        "diameter-greedy": lambda: DiameterGreedyAdversary(max_candidates=10),
    }
    healers = (ForgivingTreeHealer, SurrogateHealer, LineHealer, BinaryTreeHealer)

    rows = []
    for make_healer in healers:
        for adv_name, make_adv in adversaries.items():
            healer = make_healer({k: set(v) for k, v in overlay.items()})
            result = run_campaign(healer, make_adv(), rounds=n // 2)
            rows.append(
                [
                    healer.name,
                    adv_name,
                    result.peak_degree_increase,
                    result.peak_diameter,
                    f"{result.peak_stretch:.2f}x",
                    "yes" if result.stayed_connected else "NO",
                ]
            )

    print(format_table(
        ["healer", "adversary", "peak +deg", "peak diam", "stretch", "connected"],
        rows,
    ))
    print(
        "\nreading guide: surrogate blows up the degree column, line/binary"
        "\nblow up the diameter column; only forgiving-tree bounds both."
    )


if __name__ == "__main__":
    main()
