#!/usr/bin/env python3
"""The motivating scenario: a superpeer overlay melting down (Section 1).

The paper opens with the 2007 Skype outage — a cascading failure of the
network's "self-healing mechanisms".  This example builds a Skype-style
superpeer overlay (hubs + leaf peers), then kills superpeers one after
another, comparing three responses:

* **no repair** — the network fragments (counts the stranded peers);
* **surrogate healing** — stays connected but a surviving peer's degree
  explodes, making it the next natural victim (the cascade);
* **Forgiving Tree** — stays connected with degree increase <= 3 and the
  diameter within the log-∆ envelope.

Act two replays the full outage as *churn*: a synthetic trace of the 2007
event (join wave, mass drop-out, login storm) runs through the same three
healers via the trace-replay adversary — the Forgiving Tree absorbs the
storm end to end.

Act three brings in the 2009 algorithm: the **Forgiving Graph** healer
(weight-balanced reconstruction trees, `repro.fgraph`) rides the same
trace and is scored on the 2009 paper's metric — per-pair *stretch*
against the ideal graph.  The FT has no per-pair guarantee at all (its
theorem bounds only the diameter); the FG certifies every surviving
pair inside a `2·log2(n) + 2` envelope, and the measured worst pair
lands comfortably within it.

Act four drops the lock-step fiction: the same trace replays on the
**async transport** (`repro.simnet`) with heavy-tail link latencies —
drop-outs land while earlier heals are still exchanging messages, a
worst-case scheduler orders the deliveries, and every quiesce barrier
cross-validates the distributed image against the sequential engine.
The act reports the heal-latency percentiles: the p99/p50 gap is the
straggler tax the synchronous model never shows.

Run:  python examples/skype_outage.py
"""

from repro.adversaries import MaxDegreeAdversary, TraceReplayAdversary
from repro.baselines import (
    ForgivingGraphHealer,
    ForgivingTreeHealer,
    NoRepairHealer,
    SurrogateHealer,
)
from repro.churn import synthetic_skype_outage
from repro.graphs import generators, metrics
from repro.graphs.adjacency import connected_components
from repro.harness import churn_duel, run_campaign
from repro.harness.report import format_table


def replay_outage_trace() -> None:
    """Act two: the recorded outage (joins, drop-out wave, login storm)."""
    overlay, trace = synthetic_skype_outage()
    print(
        f"\nreplaying the synthetic outage trace: {trace.n_inserts} joins, "
        f"{trace.n_deletes} drop-outs over {len(trace)} events\n"
    )
    results = churn_duel(
        overlay,
        [NoRepairHealer, SurrogateHealer, ForgivingTreeHealer],
        lambda: TraceReplayAdversary(trace),
        events=len(trace),
    )
    rows = []
    for name in ("no-repair", "surrogate", "forgiving-tree"):
        res = results[name]
        rows.append(
            [
                name,
                res.final_alive,
                "yes" if res.stayed_connected else "NO",
                res.peak_degree_increase,
                res.peak_diameter if res.stayed_connected else "n/a (split)",
            ]
        )
    print(format_table(
        ["strategy", "final peers", "always connected", "peak +degree",
         "peak diameter"],
        rows,
    ))
    print(
        "\nunder real churn — joins included — the Forgiving Tree rides out"
        "\nthe whole storm: every join lands as a plain leaf, every drop-out"
        "\nheals locally, and no peer ever gains more than 3 edges."
    )


def forgiving_graph_act() -> None:
    """Act three: the 2009 healer on the same trace, scored on stretch."""
    import math

    from repro.harness import run_churn_campaign

    overlay, trace = synthetic_skype_outage()
    print(
        "\nact three — the Forgiving Graph (PODC 2009) on the same trace:"
        "\nweight-balanced reconstruction trees heal whole dead regions,"
        "\nbounding every surviving pair's *stretch*, not just the diameter.\n"
    )
    # One campaign per healer; each run yields both the metrics and the
    # final overlay.  Score the overlays against the same ideal graph
    # (all joins applied, drop-outs still routable) — the 2009 yardstick.
    campaigns = {}
    for make in (ForgivingTreeHealer, ForgivingGraphHealer):
        healer = make({k: set(v) for k, v in overlay.items()})
        res = run_churn_campaign(
            healer, TraceReplayAdversary(trace), events=len(trace),
            measure_diameter=False,
        )
        campaigns[healer.name] = (res, healer)
    ideal = campaigns["forgiving-graph"][1].ideal_graph(include_dead=True)
    envelope = 2 * math.log2(len(ideal)) + 2
    rows = []
    for name in ("forgiving-tree", "forgiving-graph"):
        res, healer = campaigns[name]
        worst = metrics.max_stretch(ideal, healer.graph(), sample=300, seed=7)
        guaranteed = f"<= {envelope:.1f}" if name == "forgiving-graph" else "none"
        rows.append(
            [
                name,
                res.peak_degree_increase,
                "yes" if res.stayed_connected else "NO",
                f"{worst:.2f}",
                guaranteed,
            ]
        )
    print(format_table(
        ["strategy", "peak +degree", "always connected",
         "worst pair stretch", "per-pair guarantee"],
        rows,
    ))
    print(
        "\nsame storm, same degree bound — and only the Forgiving Graph"
        "\narrives with a certificate: every surviving pair stays within a"
        "\nlogarithmic factor of its ideal distance, on any graph, under"
        "\nany churn (docs/FORGIVING_GRAPH.md)."
    )


def async_act() -> None:
    """Act four: the outage trace on the async transport, heavy tails."""
    from repro.harness import run_churn_campaign
    from repro.simnet import TransportSpec

    overlay, trace = synthetic_skype_outage()
    print(
        "\nact four — the same outage, asynchronously: heals overlap in"
        "\nflight on the discrete-event simnet, links draw heavy-tail"
        "\nlatencies, and a worst-case scheduler orders the deliveries."
        "\nEvery quiesce barrier cross-validates the distributed image"
        "\nagainst the sequential engine node-for-node (docs/ASYNC.md).\n"
    )
    rows = []
    for make in (ForgivingTreeHealer, ForgivingGraphHealer):
        healer = make({k: set(v) for k, v in overlay.items()})
        res = run_churn_campaign(
            healer,
            TraceReplayAdversary(trace),
            events=len(trace),
            measure_diameter=False,
            seed=7,
            transport=TransportSpec(
                mode="async",
                latency="heavy-tail",
                scheduler="adversarial",
                gap=0.1,
            ),
        )
        t = res.transport
        pct = t.heal_latency_percentiles
        rows.append(
            [
                healer.name,
                t.peak_in_flight_heals,
                t.conflict_barriers,
                f"{pct['p50']:.2f}",
                f"{pct['p90']:.2f}",
                f"{pct['p99']:.2f}",
                f"{pct['max']:.1f}",
            ]
        )
    print(format_table(
        ["strategy", "peak in-flight heals", "serialized conflicts",
         "p50 heal", "p90 heal", "p99 heal", "worst heal"],
        rows,
    ))
    print(
        "\nthe storm's drop-outs heal concurrently — and the final image"
        "\nstill matches the sequential engines exactly.  The p99/p50 gap"
        "\nis the straggler tax: one slow link stalls a whole repair, a"
        "\ncost the papers' synchronous rounds never surface."
    )


def main() -> None:
    hubs, leaves_per_hub = 8, 12
    overlay = generators.two_level_star(hubs, leaves_per_hub)
    n = len(overlay)
    d0 = metrics.diameter_exact(overlay)
    print(f"superpeer overlay: {hubs} hubs x {leaves_per_hub} peers "
          f"(n={n}, diameter={d0})\n")

    rounds = hubs + 1  # kill the backbone: every hub plus the center
    rows = []
    for make in (NoRepairHealer, SurrogateHealer, ForgivingTreeHealer):
        healer = make({k: set(v) for k, v in overlay.items()})
        result = run_campaign(
            healer, MaxDegreeAdversary(), rounds=rounds, measure_diameter=False
        )
        graph = healer.graph()
        comps = connected_components(graph)
        main_comp = max((len(c) for c in comps), default=0)
        stranded = len(graph) - main_comp
        diam = (
            metrics.diameter_exact(graph)
            if len(comps) == 1 and len(graph) > 1
            else None
        )
        rows.append(
            [
                healer.name,
                len(comps),
                stranded,
                result.peak_degree_increase,
                diam if diam is not None else "n/a (split)",
            ]
        )

    print(format_table(
        ["strategy", "components", "stranded peers", "peak +degree", "diameter"],
        rows,
    ))
    print(
        "\nthe Forgiving Tree keeps every surviving peer reachable with no"
        "\nhot-spot for the adversary to target next — the cascade never starts."
    )
    replay_outage_trace()
    forgiving_graph_act()
    async_act()


if __name__ == "__main__":
    main()
