#!/usr/bin/env python3
"""The motivating scenario: a superpeer overlay melting down (Section 1).

The paper opens with the 2007 Skype outage — a cascading failure of the
network's "self-healing mechanisms".  This example builds a Skype-style
superpeer overlay (hubs + leaf peers), then kills superpeers one after
another, comparing three responses:

* **no repair** — the network fragments (counts the stranded peers);
* **surrogate healing** — stays connected but a surviving peer's degree
  explodes, making it the next natural victim (the cascade);
* **Forgiving Tree** — stays connected with degree increase <= 3 and the
  diameter within the log-∆ envelope.

Run:  python examples/skype_outage.py
"""

from repro.adversaries import MaxDegreeAdversary
from repro.baselines import ForgivingTreeHealer, NoRepairHealer, SurrogateHealer
from repro.graphs import generators, metrics
from repro.graphs.adjacency import connected_components
from repro.harness import run_campaign
from repro.harness.report import format_table


def main() -> None:
    hubs, leaves_per_hub = 8, 12
    overlay = generators.two_level_star(hubs, leaves_per_hub)
    n = len(overlay)
    d0 = metrics.diameter_exact(overlay)
    print(f"superpeer overlay: {hubs} hubs x {leaves_per_hub} peers "
          f"(n={n}, diameter={d0})\n")

    rounds = hubs + 1  # kill the backbone: every hub plus the center
    rows = []
    for make in (NoRepairHealer, SurrogateHealer, ForgivingTreeHealer):
        healer = make({k: set(v) for k, v in overlay.items()})
        result = run_campaign(
            healer, MaxDegreeAdversary(), rounds=rounds, measure_diameter=False
        )
        graph = healer.graph()
        comps = connected_components(graph)
        main_comp = max((len(c) for c in comps), default=0)
        stranded = len(graph) - main_comp
        diam = (
            metrics.diameter_exact(graph)
            if len(comps) == 1 and len(graph) > 1
            else None
        )
        rows.append(
            [
                healer.name,
                len(comps),
                stranded,
                result.peak_degree_increase,
                diam if diam is not None else "n/a (split)",
            ]
        )

    print(format_table(
        ["strategy", "components", "stranded peers", "peak +degree", "diameter"],
        rows,
    ))
    print(
        "\nthe Forgiving Tree keeps every surviving peer reachable with no"
        "\nhot-spot for the adversary to target next — the cascade never starts."
    )


if __name__ == "__main__":
    main()
