#!/usr/bin/env python3
"""Quickstart: self-healing a peer-to-peer overlay with the Forgiving Tree.

Builds a small overlay, lets an adversary delete nodes one by one, and
shows the two guarantees of the paper after every repair: degree increase
at most 3, diameter within O(log ∆) of the original.

Run:  python examples/quickstart.py
"""

from repro import ForgivingTree
from repro.graphs import generators, metrics

def main() -> None:
    # A 64-peer overlay: a random tree (any connected graph works via
    # repro.baselines.ForgivingTreeHealer, which builds the spanning tree).
    overlay = generators.random_tree(64, seed=42)
    d0 = metrics.diameter_exact(overlay)
    delta = max(len(v) for v in overlay.values())
    print(f"initial overlay: n=64, diameter={d0}, max degree={delta}\n")

    ft = ForgivingTree(overlay)

    # The adversary repeatedly kills the current highest-degree survivor —
    # the classic hub attack that shreds naive overlays.
    print(f"{'round':>5}  {'victim':>6}  {'alive':>5}  {'max +deg':>8}  {'diameter':>8}")
    for t in range(1, 33):
        adjacency = ft.adjacency()
        victim = max(sorted(adjacency), key=lambda x: len(adjacency[x]))
        report = ft.delete(victim)
        diam = metrics.diameter_exact(ft.adjacency())
        print(
            f"{t:>5}  {victim:>6}  {len(ft):>5}  {ft.max_degree_increase():>8}  {diam:>8}"
        )

    print("\nafter 32 hub kills:")
    print(f"  max degree increase : {ft.max_degree_increase()}  (Theorem 1.1: <= 3)")
    print(f"  diameter            : {metrics.diameter_exact(ft.adjacency())}"
          f"  (Theorem 1.2: O(D log Delta) of {d0})")
    print("\na peek at the healed virtual tree (helpers in [brackets], ready heirs in <angles>):")
    lines = ft.render().splitlines()
    print("\n".join(lines[:12] + ["  ..."] if len(lines) > 12 else lines))

if __name__ == "__main__":
    main()
