#!/usr/bin/env python3
"""Watch the data structure heal: the Figure 5 sequence, annotated.

Replays the paper's worked example turn by turn, printing the virtual tree
(helpers in [brackets], ready heirs in <angles>) and the per-round repair
report, so the wills/heirs machinery is visible end to end.

Run:  python examples/healing_trace.py
"""

from repro import ForgivingTree

# The Figure 5 instance (see tests/conftest.py for the id <-> name map):
# r=0 — p=4 — v=6 — children a..h = 10..17; h=17 has children m,n,o=18,19,20;
# p's other children: i=5, j=7, k=8.
TREE = {0: [4], 4: [5, 6, 7, 8], 6: list(range(10, 18)), 17: [18, 19, 20]}
NAMES = {0: "r", 4: "p", 5: "i", 6: "v", 7: "j", 8: "k", 18: "m", 19: "n", 20: "o"}
NAMES.update({i: chr(ord("a") + i - 10) for i in range(10, 18)})


def named(nid: int) -> str:
    return NAMES.get(nid, str(nid))


def main() -> None:
    ft = ForgivingTree(TREE, strict=True)
    print("initial tree:")
    print(ft.render(), "\n")

    for turn, victim in enumerate((6, 4, 13, 17), start=1):
        report = ft.delete(victim)
        print(f"=== turn {turn}: adversary deletes {named(victim)} ===")
        print(report.describe())
        added = ", ".join(
            f"{named(a)}-{named(b)}" for a, b in sorted(report.edges_added)
        )
        print(f"edges added: {added}")
        print(f"max degree increase so far: {ft.max_degree_increase()} (bound: 3)")
        print(ft.render(), "\n")

    print("every deletion healed with O(1) work per neighbor — the wills")
    print("were written before the deaths, exactly as in Section 3.")


if __name__ == "__main__":
    main()
