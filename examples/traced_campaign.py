#!/usr/bin/env python3
"""Trace a concurrent-churn campaign and open it in Perfetto.

Runs a seeded lease-mode churn campaign with the full observability
stack attached (``obs="full"`` + export paths): causal heal spans over
the async kernel's virtual time, per-layer sub-spans, message-delivery
instants, lease grant/defer/resume/escalate marks on the control track,
streaming metrics and a per-phase profile.

Run:  PYTHONPATH=src python examples/traced_campaign.py

Then load ``traced_campaign.json`` at https://ui.perfetto.dev (or
chrome://tracing): one timeline row per heal, the control row on top.
The same trace is byte-identical on every run — same seed, same bytes.
"""

from repro.adversaries import ScatterChurnAdversary
from repro.baselines import ForgivingTreeHealer
from repro.graphs import generators
from repro.harness import run_churn_campaign
from repro.obs import LogHistogram, ObsSpec
from repro.simnet import TransportSpec

SEED = 42
N = 200
EVENTS = 80
TRACE_PATH = "traced_campaign.json"


def main() -> None:
    tree = generators.random_tree(N, seed=SEED)
    healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
    adversary = ScatterChurnAdversary(p_insert=0.3, seed=SEED)
    result = run_churn_campaign(
        healer,
        adversary,
        events=EVENTS,
        seed=SEED,
        transport=TransportSpec(
            mode="async", overlap="lease", latency="heavy-tail", gap=0.1
        ),
        obs=ObsSpec(trace=True, profile=True, recorder=4096,
                    trace_path=TRACE_PATH),
    )

    t, o = result.transport, result.obs
    print(f"campaign: {t.events} events over {len(healer.alive)} survivors, "
          f"peak {t.peak_in_flight_heals} heals in flight")
    print(f"trace:    {o.trace_events} events -> {o.trace_path} "
          f"(load it at https://ui.perfetto.dev)")

    # The trace *is* the transport summary: rebuilding the latency
    # histogram from the heal spans' close args reproduces the campaign
    # percentiles bit for bit.  (Both sides are fed in sorted order —
    # the streaming mean is order-sensitive at the last ulp, and the
    # trace records heals in open order while the summary records them
    # in quiesce order.)
    spans = [
        s for s in o.tracer.spans.values()
        if s.cat == "heal" and not s.name.startswith("heal:round-")
    ]
    assert len(spans) == t.events
    from_trace = LogHistogram.from_values(
        sorted(s.args["heal_latency"] for s in spans)
    ).summary()
    assert from_trace == LogHistogram.from_values(
        sorted(t.heal_latencies)
    ).summary()
    print(f"heal latency (from the trace, == campaign summary): "
          f"p50 {from_trace['p50']:.2f}  p99 {from_trace['p99']:.2f}  "
          f"max {from_trace['max']:.2f} virtual time units")

    print("\nhottest phases (wall time):")
    for phase, row in sorted(
        o.timing.items(), key=lambda kv: -kv[1]["wall_s"]
    )[:5]:
        print(f"  {phase:<24} {o.profile[phase]['calls']:>6} calls  "
              f"{1e3 * row['wall_s']:8.2f} ms  {row['us_per_call']:7.1f} µs/call")

    print("\nstreamed metrics (O(1) memory each):")
    for name in ("kernel.heals", "kernel.delivered", "lease.grants",
                 "lease.defers", "campaign.messages"):
        if name in o.metrics:
            print(f"  {name:<20} {o.metrics[name]}")


if __name__ == "__main__":
    main()
